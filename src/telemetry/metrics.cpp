#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "util/json.h"

namespace stash::telemetry {

void TimeWeightedGauge::set(double now, double v) {
  if (!started_) {
    started_ = true;
    first_t_ = last_t_ = now;
    value_ = max_ = v;
    return;
  }
  if (now < last_t_)
    throw std::invalid_argument("TimeWeightedGauge: time went backwards");
  weighted_sum_ += value_ * (now - last_t_);
  last_t_ = now;
  value_ = v;
  max_ = std::max(max_, v);
}

double TimeWeightedGauge::time_weighted_mean() const {
  double span = observed_span();
  return span > 0.0 ? weighted_sum_ / span : 0.0;
}

void TimeWeightedGauge::merge_from(const TimeWeightedGauge& o) {
  if (!o.started_) return;
  if (!started_) {
    *this = o;
    return;
  }
  weighted_sum_ += o.weighted_sum_;
  last_t_ += o.last_t_ - o.first_t_;
  value_ = o.value_;
  max_ = std::max(max_, o.max_);
}

namespace {

std::vector<double> default_time_bounds() {
  // 1e-6 s .. 1e4 s, four buckets per decade.
  std::vector<double> bounds;
  bounds.reserve(41);
  for (int i = 0; i <= 40; ++i)
    bounds.push_back(std::pow(10.0, -6.0 + static_cast<double>(i) / 4.0));
  return bounds;
}

}  // namespace

Histogram::Histogram() : Histogram(default_time_bounds()) {}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: needs at least one bucket bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bounds must be ascending");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  if (!std::isfinite(v)) throw std::invalid_argument("Histogram: non-finite value");
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void Histogram::merge_from(const Histogram& o) {
  if (bounds_ != o.bounds_)
    throw std::logic_error("Histogram::merge_from: bucket bounds differ");
  if (o.count_ == 0) return;
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += o.counts_[b];
  min_ = count_ == 0 ? o.min_ : std::min(min_, o.min_);
  max_ = count_ == 0 ? o.max_ : std::max(max_, o.max_);
  count_ += o.count_;
  sum_ += o.sum_;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    double before = static_cast<double>(cumulative);
    cumulative += counts_[b];
    if (static_cast<double>(cumulative) < target) continue;
    // Interpolate within this bucket. The underflow bucket's lower edge is
    // the observed min; the overflow bucket's upper edge the observed max.
    double lo = b == 0 ? min_ : bounds_[b - 1];
    double hi = b < bounds_.size() ? bounds_[b] : max_;
    double frac = (target - before) / static_cast<double>(counts_[b]);
    double v = lo + frac * (hi - lo);
    return std::clamp(v, min_, max_);
  }
  return max_;
}

MetricsRegistry::Entry& MetricsRegistry::entry(const std::string& name, Kind kind) {
  if (name.empty())
    throw std::invalid_argument("MetricsRegistry: empty metric name");
  auto [it, inserted] = metrics_.try_emplace(name);
  if (!inserted && it->second.kind != kind)
    throw std::logic_error("MetricsRegistry: '" + name +
                           "' already registered with a different kind");
  if (inserted) it->second.kind = kind;
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Entry& e = entry(name, Kind::kCounter);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, bool volatile_metric) {
  Entry& e = entry(name, Kind::kGauge);
  if (!e.gauge) {
    e.gauge = std::make_unique<Gauge>();
    e.is_volatile = volatile_metric;
  }
  return *e.gauge;
}

TimeWeightedGauge& MetricsRegistry::time_gauge(const std::string& name) {
  Entry& e = entry(name, Kind::kTimeGauge);
  if (!e.time_gauge) e.time_gauge = std::make_unique<TimeWeightedGauge>();
  return *e.time_gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  Entry& e = entry(name, Kind::kHistogram);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>();
  return *e.histogram;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  Entry& e = entry(name, Kind::kHistogram);
  if (!e.histogram) e.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  return *e.histogram;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = metrics_.find(name);
  return it != metrics_.end() ? it->second.counter.get() : nullptr;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  auto it = metrics_.find(name);
  return it != metrics_.end() ? it->second.gauge.get() : nullptr;
}

const TimeWeightedGauge* MetricsRegistry::find_time_gauge(
    const std::string& name) const {
  auto it = metrics_.find(name);
  return it != metrics_.end() ? it->second.time_gauge.get() : nullptr;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
  auto it = metrics_.find(name);
  return it != metrics_.end() ? it->second.histogram.get() : nullptr;
}

void MetricsRegistry::merge_from(const MetricsRegistry& src) {
  for (const auto& [name, se] : src.metrics_) {
    Entry& de = entry(name, se.kind);
    de.is_volatile = de.is_volatile || se.is_volatile;
    switch (se.kind) {
      case Kind::kCounter:
        if (!de.counter) de.counter = std::make_unique<Counter>();
        de.counter->add(se.counter->value());
        break;
      case Kind::kGauge:
        if (!de.gauge) de.gauge = std::make_unique<Gauge>();
        de.gauge->set(se.gauge->value());
        break;
      case Kind::kTimeGauge:
        if (!de.time_gauge) de.time_gauge = std::make_unique<TimeWeightedGauge>();
        de.time_gauge->merge_from(*se.time_gauge);
        break;
      case Kind::kHistogram:
        if (!de.histogram)
          de.histogram = std::make_unique<Histogram>(se.histogram->upper_bounds());
        de.histogram->merge_from(*se.histogram);
        break;
    }
  }
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(metrics_.size());
  for (const auto& [name, e] : metrics_) out.push_back(name);
  return out;
}

std::string MetricsRegistry::to_json(bool include_volatile) const {
  util::JsonWriter w;
  w.begin_object();
  w.key("schema").value("stash.metrics/1");
  w.key("metrics").begin_object();
  for (const auto& [name, e] : metrics_) {
    if (e.is_volatile && !include_volatile) continue;
    w.key(name).begin_object();
    switch (e.kind) {
      case Kind::kCounter:
        w.key("type").value("counter");
        w.key("value").value(e.counter->value());
        break;
      case Kind::kGauge:
        w.key("type").value("gauge");
        w.key("value").value(e.gauge->value());
        break;
      case Kind::kTimeGauge:
        w.key("type").value("time_weighted_gauge");
        w.key("mean").value(e.time_gauge->time_weighted_mean());
        w.key("max").value(e.time_gauge->max());
        w.key("last").value(e.time_gauge->current());
        w.key("span_s").value(e.time_gauge->observed_span());
        break;
      case Kind::kHistogram:
        w.key("type").value("histogram");
        w.key("count").value(static_cast<unsigned long long>(e.histogram->count()));
        w.key("sum").value(e.histogram->sum());
        w.key("min").value(e.histogram->min());
        w.key("max").value(e.histogram->max());
        w.key("mean").value(e.histogram->mean());
        w.key("p50").value(e.histogram->percentile(50.0));
        w.key("p95").value(e.histogram->percentile(95.0));
        w.key("p99").value(e.histogram->percentile(99.0));
        break;
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

void MetricsRegistry::write(std::ostream& os, bool include_volatile) const {
  os << to_json(include_volatile);
}

namespace {

// Prometheus metric names admit only [a-zA-Z0-9_:] and cannot start with a
// digit; the registry's slash-separated hierarchy flattens to underscores.
std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

void prom_line(std::string& out, const std::string& name, double v) {
  out += name;
  out += ' ';
  out += util::json_double(v);
  out += '\n';
}

}  // namespace

std::string MetricsRegistry::to_prometheus(bool include_volatile) const {
  std::string out;
  for (const auto& [name, e] : metrics_) {
    if (e.is_volatile && !include_volatile) continue;
    const std::string p = prom_name(name);
    switch (e.kind) {
      case Kind::kCounter:
        out += "# TYPE " + p + " counter\n";
        prom_line(out, p, e.counter->value());
        break;
      case Kind::kGauge:
        out += "# TYPE " + p + " gauge\n";
        prom_line(out, p, e.gauge->value());
        break;
      case Kind::kTimeGauge:
        // No native Prometheus kind integrates over *simulated* time, so the
        // derived statistics export as three gauges.
        out += "# TYPE " + p + "_mean gauge\n";
        prom_line(out, p + "_mean", e.time_gauge->time_weighted_mean());
        out += "# TYPE " + p + "_max gauge\n";
        prom_line(out, p + "_max", e.time_gauge->max());
        out += "# TYPE " + p + "_last gauge\n";
        prom_line(out, p + "_last", e.time_gauge->current());
        break;
      case Kind::kHistogram: {
        out += "# TYPE " + p + " histogram\n";
        const auto& bounds = e.histogram->upper_bounds();
        const auto& counts = e.histogram->bucket_counts();
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < bounds.size(); ++i) {
          cum += counts[i];
          out += p + "_bucket{le=\"" + util::json_double(bounds[i]) + "\"} " +
                 std::to_string(cum) + "\n";
        }
        out += p + "_bucket{le=\"+Inf\"} " +
               std::to_string(e.histogram->count()) + "\n";
        prom_line(out, p + "_sum", e.histogram->sum());
        out += p + "_count " + std::to_string(e.histogram->count()) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace stash::telemetry
