// RunManifest: one self-describing JSON document per profiling run.
//
// A manifest bundles everything needed to audit a result after the fact:
// the command and configuration that produced it, the StallReport (and, for
// fault-conditioned runs, the FaultProfileReport), the raw TrainResult or
// TrainingEstimate where one exists, and a full MetricsRegistry snapshot.
// Doubles serialize with shortest-round-trip formatting, so a reader
// recovers bit-identical stall percentages — the golden-file tests rely on
// this.
//
// The header lives in telemetry/ with the registry it embeds; the
// implementation is compiled into the profiler library because it
// serializes profiler- and trainer-level report types.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ddl/train_config.h"
#include "stash/profiler.h"
#include "stash/recommend.h"
#include "stash/session.h"
#include "telemetry/build_info.h"
#include "telemetry/metrics.h"

namespace stash::telemetry {

// Standalone serializers, reused by RunManifest and available to tests.
std::string to_json(const profiler::StallReport& r);
std::string to_json(const ddl::RecoveryRecord& r);
std::string to_json(const ddl::TrainResult& r);
std::string to_json(const profiler::FaultProfileReport& r);
std::string to_json(const profiler::TrainingEstimate& r);
std::string to_json(const profiler::Recommendation& r);

struct RunManifest {
  std::string command;  // e.g. "profile", "stalls", "estimate"

  // Flattened configuration key/values in insertion order (model, instance,
  // batch, option overrides — whatever produced the run).
  std::vector<std::pair<std::string, std::string>> config;

  std::optional<profiler::StallReport> stall_report;
  std::optional<profiler::FaultProfileReport> fault_report;
  std::optional<ddl::TrainResult> train_result;
  std::optional<profiler::TrainingEstimate> estimate;
  // Ranked candidate list from a recommend run; empty = key absent.
  std::vector<profiler::Recommendation> recommendations;

  // Snapshot source (not owned; may be null for runs without metrics).
  const MetricsRegistry* metrics = nullptr;
  bool include_volatile_metrics = true;

  // Build provenance stamped into the manifest (schema /2). Defaults to the
  // binary's own configure-time build_info(); tests inject a fixed BuildInfo
  // so golden manifests stay byte-stable across machines. Not owned.
  const BuildInfo* provenance = nullptr;

  void add_config(std::string key, std::string value) {
    config.emplace_back(std::move(key), std::move(value));
  }

  std::string to_json() const;
  void write(std::ostream& os) const;
};

}  // namespace stash::telemetry
