// Metrics registry: the numeric side of the telemetry layer.
//
// Components register instruments under hierarchical slash-separated names
// ("machine0/gpu2/busy_s", "coll/ring/bytes_sent") and update them as the
// simulation runs. A registry snapshot is a deterministic JSON document:
// instruments serialize sorted by name, doubles use shortest-round-trip
// formatting, and nothing in a snapshot depends on wall-clock time unless
// the instrument was explicitly registered as volatile (the sim-time /
// wall-time ratio is the one legitimate use). Two identical seeded runs
// therefore produce byte-identical snapshots — a property the determinism
// tests pin down.
//
// Four instrument kinds cover everything the paper's accounting needs:
//   Counter            monotonically accumulating total (bytes, events)
//   Gauge              last-write-wins scalar (utilization %, hit rate)
//   TimeWeightedGauge  piecewise-constant signal integrated over simulated
//                      time (queue depth, pipeline occupancy)
//   Histogram          fixed log-spaced buckets with exact count/sum/min/max
//                      and interpolated p50/p95/p99
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace stash::telemetry {

class Counter {
 public:
  void add(double delta) { value_ += delta; }
  void increment() { value_ += 1.0; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Integrates a piecewise-constant signal over simulated time. Each set(now,
// v) closes the window [last_t, now) at the previous value. The mean is
// taken over the observed span [first_t, last_t]; callers that want the
// integral to extend to the end of a run should issue a final
// set(end_time, current()).
class TimeWeightedGauge {
 public:
  void set(double now, double v);
  double current() const { return value_; }
  double max() const { return started_ ? max_ : 0.0; }
  // Time-weighted mean over the observed span; 0 before two observations.
  double time_weighted_mean() const;
  double observed_span() const { return started_ ? last_t_ - first_t_ : 0.0; }

  // Splices `o`'s observed span onto the end of this gauge's, as if the two
  // signals had been recorded back to back: spans add, the weighted sum
  // (and so the combined mean) accumulates, max is the joint max, and the
  // last value becomes `o`'s. Merging into an untouched gauge is an exact
  // copy — the property the deterministic parallel merge relies on.
  void merge_from(const TimeWeightedGauge& o);

 private:
  bool started_ = false;
  double first_t_ = 0.0;
  double last_t_ = 0.0;
  double value_ = 0.0;
  double weighted_sum_ = 0.0;
  double max_ = 0.0;
};

// Fixed-bucket histogram. Bucket upper bounds are set at construction (the
// default covers 1 microsecond to 10^4 seconds, four buckets per decade,
// which suits every duration this simulator produces). Percentiles are
// linearly interpolated inside the containing bucket and clamped to the
// exact observed [min, max].
class Histogram {
 public:
  Histogram();  // default log-spaced time buckets
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  // p in [0, 100]; returns 0 on an empty histogram.
  double percentile(double p) const;

  const std::vector<double>& upper_bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }

  // Adds `o`'s observations bucket-wise. Throws std::logic_error if the two
  // histograms were built with different bounds. Merging into a fresh
  // histogram with equal bounds reproduces `o` exactly.
  void merge_from(const Histogram& o);

 private:
  std::vector<double> bounds_;          // ascending upper bounds
  std::vector<std::uint64_t> counts_;   // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Instrument accessors create on first use and return a stable reference.
  // Registering the same name under two different kinds throws
  // std::logic_error (a registry is a flat namespace). `volatile_metric`
  // marks an instrument whose value is not a pure function of the model
  // (e.g. wall-clock derived); volatile instruments are excluded from
  // deterministic snapshots.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name, bool volatile_metric = false);
  TimeWeightedGauge& time_gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds);

  // Read-side lookups for tests and report code; nullptr when absent or of
  // a different kind.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const TimeWeightedGauge* find_time_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  std::size_t size() const { return metrics_.size(); }
  // Names in sorted order (the serialization order).
  std::vector<std::string> names() const;

  // Folds every instrument of `src` into this registry: counters add,
  // gauges take src's value (last write wins), time-weighted gauges splice
  // spans, histograms add bucket-wise; volatility is inherited on creation
  // and ORed on collision. Kind conflicts throw std::logic_error. Merging
  // src into an empty registry reproduces src's snapshot byte-for-byte,
  // which is what lets parallel workers record into private registries that
  // are merged in scenario-key order (never completion order) without the
  // output depending on --jobs.
  void merge_from(const MetricsRegistry& src);

  // Deterministic JSON snapshot, instruments sorted by name. With
  // include_volatile=false the output is a pure function of the simulated
  // model (byte-identical across identical runs).
  std::string to_json(bool include_volatile = true) const;
  void write(std::ostream& os, bool include_volatile = true) const;

  // Prometheus text exposition format (version 0.0.4), same ordering and
  // volatility semantics as to_json. Slashes and other characters outside
  // [a-zA-Z0-9_:] in instrument names become '_'. Counters and gauges map
  // directly; a histogram becomes the conventional cumulative
  // <name>_bucket{le="..."} series plus _sum and _count; a time-weighted
  // gauge becomes three gauges <name>_mean / _max / _last.
  std::string to_prometheus(bool include_volatile = true) const;

 private:
  enum class Kind { kCounter, kGauge, kTimeGauge, kHistogram };
  struct Entry {
    Kind kind;
    bool is_volatile = false;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<TimeWeightedGauge> time_gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& entry(const std::string& name, Kind kind);

  std::map<std::string, Entry> metrics_;  // ordered => deterministic output
};

}  // namespace stash::telemetry
