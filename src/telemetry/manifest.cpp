#include "telemetry/manifest.h"

#include <ostream>

#include "util/json.h"

namespace stash::telemetry {

namespace {

const char* policy_name(ddl::RecoveryPolicy p) {
  switch (p) {
    case ddl::RecoveryPolicy::kCheckpointRestart:
      return "checkpoint-restart";
    case ddl::RecoveryPolicy::kShrink:
      return "shrink";
  }
  return "unknown";
}

void write_recovery(util::JsonWriter& w, const ddl::RecoveryRecord& r) {
  w.begin_object();
  w.key("time_s").value(r.time_s);
  w.key("at_iteration").value(r.at_iteration);
  w.key("policy").value(policy_name(r.policy));
  w.key("workers_before").value(r.workers_before);
  w.key("workers_after").value(r.workers_after);
  w.key("wait_seconds").value(r.wait_seconds);
  w.key("rework_iterations").value(r.rework_iterations);
  w.end_object();
}

void write_stall_report(util::JsonWriter& w, const profiler::StallReport& r) {
  w.begin_object();
  w.key("config").value(r.config_label);
  w.key("model").value(r.model_name);
  w.key("per_gpu_batch").value(r.per_gpu_batch);
  w.key("gpus").value(r.gpus);
  w.key("t1_s").value(r.t1);
  w.key("t2_s").value(r.t2);
  w.key("t3_s").value(r.t3);
  w.key("t4_s").value(r.t4);
  // t5 is NaN without a network split; json_double maps that to null.
  w.key("t5_s").value(r.t5);
  w.key("has_network_step").value(r.has_network_step);
  w.key("ic_stall_pct").value(r.ic_stall_pct);
  w.key("nw_stall_pct").value(r.nw_stall_pct);
  w.key("prep_stall_pct").value(r.prep_stall_pct);
  w.key("fetch_stall_pct").value(r.fetch_stall_pct);
  w.key("fault_stall_pct").value(r.fault_stall_pct);
  w.key("degenerate_pcts").value(r.degenerate_pcts);
  w.key("epoch_seconds").value(r.epoch_seconds);
  w.key("epoch_cost_usd").value(r.epoch_cost_usd);
  w.end_object();
}

void write_train_result(util::JsonWriter& w, const ddl::TrainResult& r) {
  w.begin_object();
  w.key("measured_iterations").value(r.measured_iterations);
  w.key("window_time_s").value(r.window_time);
  w.key("per_iteration_s").value(r.per_iteration);
  w.key("data_wait_s").value(r.data_wait);
  w.key("h2d_s").value(r.h2d_time);
  w.key("compute_s").value(r.compute_time);
  w.key("comm_tail_s").value(r.comm_tail);
  w.key("gpus_used").value(r.gpus_used);
  w.key("gpus_at_end").value(r.gpus_at_end);
  w.key("fault_stall_s").value(r.fault_stall);
  w.key("checkpoint_s").value(r.checkpoint_seconds);
  w.key("checkpoints_written").value(r.checkpoints_written);
  w.key("recoveries").begin_array();
  for (const auto& rec : r.recoveries) write_recovery(w, rec);
  w.end_array();
  w.end_object();
}

void write_fault_report(util::JsonWriter& w, const profiler::FaultProfileReport& r) {
  w.begin_object();
  w.key("healthy");
  write_stall_report(w, r.healthy);
  w.key("faulted");
  write_stall_report(w, r.faulted);
  w.key("fault_stall_seconds").value(r.fault_stall_seconds);
  w.key("checkpoint_seconds").value(r.checkpoint_seconds);
  w.key("checkpoints_written").value(r.checkpoints_written);
  w.key("gpus_at_end").value(r.gpus_at_end);
  w.key("epoch_slowdown").value(r.epoch_slowdown);
  w.key("recoveries").begin_array();
  for (const auto& rec : r.recoveries) write_recovery(w, rec);
  w.end_array();
  w.end_object();
}

void write_estimate(util::JsonWriter& w, const profiler::TrainingEstimate& r) {
  w.begin_object();
  w.key("config").value(r.config_label);
  w.key("model").value(r.model_name);
  w.key("epochs").value(r.epochs);
  w.key("per_gpu_batch").value(r.per_gpu_batch);
  w.key("first_epoch_seconds").value(r.first_epoch_seconds);
  w.key("steady_epoch_seconds").value(r.steady_epoch_seconds);
  w.key("total_seconds").value(r.total_seconds);
  w.key("total_cost_usd").value(r.total_cost_usd);
  w.key("cold_start_overhead_pct").value(r.cold_start_overhead_pct);
  w.end_object();
}

void write_recommendation(util::JsonWriter& w, const profiler::Recommendation& r) {
  w.begin_object();
  w.key("instance").value(r.spec.instance);
  w.key("count").value(r.spec.count);
  w.key("label").value(r.spec.label());
  w.key("rank_by_time").value(r.by_time);
  w.key("rank_by_cost").value(r.by_cost);
  w.key("report");
  write_stall_report(w, r.report);
  w.end_object();
}

}  // namespace

std::string to_json(const profiler::StallReport& r) {
  util::JsonWriter w;
  write_stall_report(w, r);
  return w.str();
}

std::string to_json(const ddl::RecoveryRecord& r) {
  util::JsonWriter w;
  write_recovery(w, r);
  return w.str();
}

std::string to_json(const ddl::TrainResult& r) {
  util::JsonWriter w;
  write_train_result(w, r);
  return w.str();
}

std::string to_json(const profiler::FaultProfileReport& r) {
  util::JsonWriter w;
  write_fault_report(w, r);
  return w.str();
}

std::string to_json(const profiler::TrainingEstimate& r) {
  util::JsonWriter w;
  write_estimate(w, r);
  return w.str();
}

std::string to_json(const profiler::Recommendation& r) {
  util::JsonWriter w;
  write_recommendation(w, r);
  return w.str();
}

std::string RunManifest::to_json() const {
  // Every machine-readable schema this build emits, recorded in the
  // provenance block so an archive reader knows what a given binary could
  // have produced without probing for each document kind.
  static const char* const kEmittedSchemas[] = {
      "stash.run_manifest/2", "stash.run_record/1", "stash.runs/1",
      "stash.metrics/1",      "stash.blame/1",      "stash.plan/1",
      "stash.autopilot/1",    "stash.monitor/1",    "stash.sim_key/1",
  };
  const BuildInfo& build = provenance != nullptr ? *provenance : build_info();
  util::JsonWriter w;
  w.begin_object();
  w.key("schema").value("stash.run_manifest/2");
  w.key("tool").value("stash");
  w.key("provenance").begin_object();
  w.key("git_sha").value(build.git_sha);
  w.key("git_dirty").value(build.git_dirty);
  w.key("compiler_id").value(build.compiler_id);
  w.key("compiler_version").value(build.compiler_version);
  w.key("build_type").value(build.build_type);
  w.key("schemas").begin_array();
  for (const char* s : kEmittedSchemas) w.value(s);
  w.end_array();
  w.end_object();
  w.key("command").value(command);
  w.key("config").begin_object();
  for (const auto& [k, v] : config) w.key(k).value(v);
  w.end_object();
  if (stall_report) {
    w.key("stall_report");
    write_stall_report(w, *stall_report);
  }
  if (fault_report) {
    w.key("fault_report");
    write_fault_report(w, *fault_report);
  }
  if (train_result) {
    w.key("train_result");
    write_train_result(w, *train_result);
  }
  if (estimate) {
    w.key("estimate");
    write_estimate(w, *estimate);
  }
  if (!recommendations.empty()) {
    w.key("recommendations").begin_array();
    for (const auto& r : recommendations) write_recommendation(w, r);
    w.end_array();
  }
  if (metrics != nullptr) {
    w.key("metrics").raw(metrics->to_json(include_volatile_metrics));
  }
  w.end_object();
  return w.str();
}

void RunManifest::write(std::ostream& os) const { os << to_json() << "\n"; }

}  // namespace stash::telemetry
