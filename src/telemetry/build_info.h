// Build provenance baked in at configure time, so every archived record is
// attributable to the exact build that produced it: git commit (+dirty
// flag), compiler, and build type. Values are captured by CMake when the
// build tree is configured — a stale configure can lag the working tree,
// which is why the dirty flag exists. Outside a git checkout the sha is
// "unknown".
#pragma once

#include <string>

namespace stash::telemetry {

struct BuildInfo {
  std::string git_sha;           // short sha, or "unknown"
  bool git_dirty = false;        // tracked files modified at configure time
  std::string compiler_id;       // e.g. "GNU", "Clang"
  std::string compiler_version;  // e.g. "13.2.0"
  std::string build_type;        // CMAKE_BUILD_TYPE, e.g. "RelWithDebInfo"
};

// The provenance of this binary (values substituted by CMake into
// build_info.cpp). Constant for the life of the process.
const BuildInfo& build_info();

}  // namespace stash::telemetry
