#include "hw/flow_network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <unordered_set>

namespace stash::hw {

namespace {
// A flow is considered drained when fewer than this many bytes remain;
// absorbs floating-point drift from piecewise rate integration.
constexpr double kDrainEpsilonBytes = 1e-6;
}  // namespace

Link* FlowNetwork::add_link(std::string name, double capacity_bytes_per_s) {
  links_.push_back(std::make_unique<Link>(std::move(name), capacity_bytes_per_s));
  return links_.back().get();
}

sim::Task<void> FlowNetwork::transfer(double bytes, std::vector<Link*> path,
                                      double latency_s) {
  if (bytes < 0.0) throw std::invalid_argument("FlowNetwork::transfer: negative bytes");
  for (Link* l : path)
    if (l == nullptr) throw std::invalid_argument("FlowNetwork::transfer: null link");

  if (latency_s > 0.0) co_await sim_.delay(latency_s);
  if (bytes <= kDrainEpsilonBytes || path.empty()) {
    for (Link* l : path) l->account_bytes(bytes);
    co_return;
  }

  settle();
  auto done = std::make_shared<sim::Event>(sim_);
  for (Link* l : path) l->account_bytes(bytes);
  flows_.push_back(Flow{next_flow_id_++, bytes, 0.0, std::move(path), done});
  rebalance();
  co_await done->wait();
}

double FlowNetwork::link_throughput(const Link* link) const {
  double sum = 0.0;
  for (const Flow& f : flows_)
    if (std::find(f.path.begin(), f.path.end(), link) != f.path.end()) sum += f.rate;
  return sum;
}

void FlowNetwork::update_capacity(Link* link, double capacity_bytes_per_s) {
  if (link == nullptr) throw std::invalid_argument("update_capacity: null link");
  settle();
  link->set_capacity(capacity_bytes_per_s);
  rebalance();
}

void FlowNetwork::settle() {
  double dt = sim_.now() - last_settle_;
  if (dt > 0.0) {
    for (Flow& f : flows_) f.remaining = std::max(0.0, f.remaining - f.rate * dt);
    // Busy-time accounting: every link touched by an active flow was
    // occupied for the elapsed window (links are deduplicated so shared
    // links are charged once).
    std::unordered_set<Link*> touched;
    for (Flow& f : flows_)
      for (Link* l : f.path) touched.insert(l);
    for (Link* l : touched) l->account_busy(dt);
  }
  last_settle_ = sim_.now();
}

void FlowNetwork::compute_max_min_rates() {
  // Progressive filling. All flows start frozen at zero and unfrozen flows
  // grow uniformly until some link saturates; flows crossing a saturated
  // link freeze at their current rate.
  std::unordered_map<const Link*, double> headroom;
  std::unordered_map<const Link*, int> unfrozen_count;
  for (Flow& f : flows_) {
    f.rate = 0.0;
    for (const Link* l : f.path) {
      headroom.try_emplace(l, l->capacity());
      ++unfrozen_count[l];
    }
  }

  std::vector<Flow*> unfrozen;
  unfrozen.reserve(flows_.size());
  for (Flow& f : flows_) unfrozen.push_back(&f);

  while (!unfrozen.empty()) {
    // The next link to saturate bounds the uniform rate increase.
    double delta = std::numeric_limits<double>::infinity();
    for (const auto& [link, room] : headroom) {
      int n = unfrozen_count[link];
      if (n > 0) delta = std::min(delta, room / n);
    }
    if (!std::isfinite(delta)) break;  // no loaded links remain

    for (Flow* f : unfrozen) f->rate += delta;
    for (auto& [link, room] : headroom) room -= delta * unfrozen_count[link];

    // Freeze flows that cross any saturated link.
    std::vector<Flow*> still;
    still.reserve(unfrozen.size());
    for (Flow* f : unfrozen) {
      bool saturated = false;
      for (const Link* l : f->path) {
        if (headroom[l] <= 1e-9 * l->capacity()) {
          saturated = true;
          break;
        }
      }
      if (saturated) {
        for (const Link* l : f->path) --unfrozen_count[l];
      } else {
        still.push_back(f);
      }
    }
    if (still.size() == unfrozen.size()) {
      // Numerical stall guard: freeze everything crossing the tightest link.
      break;
    }
    unfrozen.swap(still);
  }
}

void FlowNetwork::rebalance() {
  if (pending_completion_.valid()) {
    sim_.cancel(pending_completion_);
    pending_completion_ = {};
  }

  // Smallest delay that still advances the simulated clock at the current
  // magnitude; a residual below it can never drain through the event loop
  // (now + dt == now in double), so such flows are completed immediately.
  const double min_progress = std::max(1e-12, sim_.now() * 1e-12);

  double next = 0.0;
  while (true) {
    // Complete drained flows (settle() must have been called beforehand).
    std::vector<std::shared_ptr<sim::Event>> finished;
    for (auto it = flows_.begin(); it != flows_.end();) {
      if (it->remaining <= kDrainEpsilonBytes) {
        finished.push_back(std::move(it->done));
        it = flows_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto& ev : finished) ev->trigger();

    compute_max_min_rates();
    if (flows_.empty()) return;

    next = std::numeric_limits<double>::infinity();
    for (const Flow& f : flows_) {
      if (f.rate > 0.0) next = std::min(next, f.remaining / f.rate);
    }
    if (!std::isfinite(next))
      throw std::logic_error(
          "FlowNetwork: active flows with zero rate (link with no capacity?)");
    if (next >= min_progress) break;

    // Sub-resolution residues: drain them now and go round again.
    for (Flow& f : flows_) {
      if (f.rate > 0.0 && f.remaining / f.rate < min_progress) f.remaining = 0.0;
    }
  }

  pending_completion_ = sim_.schedule(next, [this] {
    pending_completion_ = {};
    settle();
    rebalance();
  });
}

}  // namespace stash::hw
