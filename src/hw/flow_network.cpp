#include "hw/flow_network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace stash::hw {

namespace {
// A flow is considered drained when fewer than this many bytes remain;
// absorbs floating-point drift from piecewise rate integration.
constexpr double kDrainEpsilonBytes = 1e-6;
}  // namespace

FlowNetwork::FlowNetwork(sim::Simulator& sim) : sim_(sim) {
  // The network must outlive any run() of the simulator it registers with
  // (in practice the two are always members of the same harness/scenario
  // object, constructed and destroyed together).
  flush_hook_ = sim_.add_flush_hook([this] { flush(); });
#ifndef NDEBUG
  verify_ = true;
#endif
}

Link* FlowNetwork::add_link(std::string name, double capacity_bytes_per_s) {
  links_.push_back(std::make_unique<Link>(std::move(name), capacity_bytes_per_s));
  links_.back()->set_net_index(static_cast<std::uint32_t>(links_.size() - 1));
  link_states_.emplace_back();
  return links_.back().get();
}

void FlowNetwork::check_owned(const Link* l) const {
  std::uint32_t idx = l->net_index();
  if (idx >= links_.size() || links_[idx].get() != l)
    throw std::invalid_argument("FlowNetwork: link not owned by this network");
}

std::uint32_t FlowNetwork::alloc_flow() {
  if (free_head_ != kNil) {
    std::uint32_t slot = free_head_;
    free_head_ = flow_slots_[slot].next_free;
    return slot;
  }
  flow_slots_.emplace_back();
  return static_cast<std::uint32_t>(flow_slots_.size() - 1);
}

sim::Task<void> FlowNetwork::transfer(double bytes, std::vector<Link*> path,
                                      double latency_s) {
  if (bytes < 0.0) throw std::invalid_argument("FlowNetwork::transfer: negative bytes");
  for (Link* l : path) {
    if (l == nullptr) throw std::invalid_argument("FlowNetwork::transfer: null link");
    check_owned(l);
  }
  if (path.size() > 64)
    throw std::invalid_argument("FlowNetwork::transfer: path longer than 64 links");

  if (latency_s > 0.0) co_await sim_.delay(latency_s);
  if (bytes <= kDrainEpsilonBytes || path.empty()) {
    for (Link* l : path) l->account_bytes(bytes);
    co_return;
  }

  settle();
  std::uint32_t slot = alloc_flow();
  Flow& f = flow_slots_[slot];
  f.id = next_flow_id_++;
  f.remaining = bytes;
  f.rate = 0.0;
  f.first_mask = 0;
  f.path = std::move(path);
  f.member_pos.resize(f.path.size());
  auto done = std::make_shared<sim::Event>(sim_);
  f.done = done;
  for (std::size_t i = 0; i < f.path.size(); ++i) {
    Link* l = f.path[i];
    bool first = true;
    for (std::size_t j = 0; j < i; ++j) {
      if (f.path[j] == l) {
        first = false;
        break;
      }
    }
    if (first) f.first_mask |= 1ull << i;
    LinkState& ls = state_of(l);
    if (ls.members.empty()) {  // idle -> busy: settle() charges it from now on
      ls.busy_pos = static_cast<std::uint32_t>(busy_links_.size());
      busy_links_.push_back(l->net_index());
    }
    f.member_pos[i] = static_cast<std::uint32_t>(ls.members.size());
    ls.members.push_back(Member{slot, static_cast<std::uint32_t>(i)});
    mark_link_dirty(l->net_index());
    l->account_bytes(bytes);
  }
  f.active_pos = static_cast<std::uint32_t>(active_.size());
  active_.push_back(slot);
  mark_dirty_and_arm();
  co_await done->wait();
}

double FlowNetwork::link_throughput(const Link* link) const {
  // Read barrier: a deferred refill must land before rates are observed.
  const_cast<FlowNetwork*>(this)->flush();
  if (link == nullptr) return 0.0;
  std::uint32_t idx = link->net_index();
  if (idx >= links_.size() || links_[idx].get() != link) return 0.0;
  return link_states_[idx].throughput;
}

std::size_t FlowNetwork::active_flows() const {
  const_cast<FlowNetwork*>(this)->flush();
  return active_.size();
}

void FlowNetwork::update_capacity(Link* link, double capacity_bytes_per_s) {
  if (link == nullptr) throw std::invalid_argument("update_capacity: null link");
  settle();
  link->set_capacity(capacity_bytes_per_s);
  std::uint32_t idx = link->net_index();
  if (idx < links_.size() && links_[idx].get() == link) {
    mark_link_dirty(idx);
    mark_dirty_and_arm();
  }
}

void FlowNetwork::settle() {
  double dt = sim_.now() - last_settle_;
  if (dt > 0.0) {
    for (std::uint32_t s : active_) {
      Flow& f = flow_slots_[s];
      f.remaining = std::max(0.0, f.remaining - f.rate * dt);
    }
    // Busy-time accounting: every link with at least one active flow was
    // occupied for the elapsed window (busy_links_ holds each such link
    // once, so shared links are charged once).
    for (std::uint32_t li : busy_links_) links_[li]->account_busy(dt);
  }
  last_settle_ = sim_.now();
}

void FlowNetwork::mark_link_dirty(std::uint32_t link_idx) {
  LinkState& ls = link_states_[link_idx];
  if (!ls.dirty) {
    ls.dirty = true;
    dirty_links_.push_back(link_idx);
  }
}

void FlowNetwork::mark_dirty_and_arm() {
  needs_rebalance_ = true;
  sim_.request_flush(flush_hook_);
}

void FlowNetwork::flush() {
  if (!needs_rebalance_) return;
  needs_rebalance_ = false;
  settle();
  rebalance();
}

void FlowNetwork::remove_flow(std::uint32_t slot) {
  Flow& f = flow_slots_[slot];
  for (std::size_t i = 0; i < f.path.size(); ++i) {
    Link* l = f.path[i];
    LinkState& ls = state_of(l);
    mark_link_dirty(l->net_index());
    std::uint32_t pos = f.member_pos[i];
    ls.members[pos] = ls.members.back();
    ls.members.pop_back();
    if (pos < static_cast<std::uint32_t>(ls.members.size())) {
      const Member& moved = ls.members[pos];
      flow_slots_[moved.flow_slot].member_pos[moved.path_idx] = pos;
    }
    if (ls.members.empty()) {  // busy -> idle (settle() already charged it)
      std::uint32_t bpos = ls.busy_pos;
      busy_links_[bpos] = busy_links_.back();
      busy_links_.pop_back();
      if (bpos < static_cast<std::uint32_t>(busy_links_.size()))
        link_states_[busy_links_[bpos]].busy_pos = bpos;
      ls.busy_pos = kNil;
    }
  }
  std::uint32_t apos = f.active_pos;
  active_[apos] = active_.back();
  active_.pop_back();
  if (apos < static_cast<std::uint32_t>(active_.size()))
    flow_slots_[active_[apos]].active_pos = apos;
  // Recycle the slot; path/member_pos keep their capacity for reuse.
  f.path.clear();
  f.member_pos.clear();
  f.done.reset();
  f.rate = 0.0;
  f.active_pos = kNil;
  f.next_free = free_head_;
  free_head_ = slot;
}

void FlowNetwork::refill_dirty() {
  if (dirty_links_.empty()) return;
  ++epoch_;
  for (std::uint32_t seed : dirty_links_) {
    LinkState& ss = link_states_[seed];
    ss.dirty = false;
    if (ss.epoch == epoch_) continue;  // already refilled via another seed
    // Walk outward to the connected component containing this link: only
    // flows sharing a link (directly or transitively) can affect each
    // other's max-min rates, so the component boundary is exact.
    comp_links_.clear();
    comp_flows_.clear();
    walk_stack_.clear();
    ss.epoch = epoch_;
    comp_links_.push_back(seed);
    walk_stack_.push_back(seed);
    while (!walk_stack_.empty()) {
      std::uint32_t li = walk_stack_.back();
      walk_stack_.pop_back();
      for (const Member& m : link_states_[li].members) {
        Flow& f = flow_slots_[m.flow_slot];
        if (f.epoch == epoch_) continue;
        f.epoch = epoch_;
        comp_flows_.push_back(m.flow_slot);
        for (Link* l : f.path) {
          LinkState& ls = state_of(l);
          if (ls.epoch != epoch_) {
            ls.epoch = epoch_;
            comp_links_.push_back(l->net_index());
            walk_stack_.push_back(l->net_index());
          }
        }
      }
    }
    fill_component();
    ++refills_;
    refill_flow_visits_ += comp_flows_.size();
  }
  dirty_links_.clear();
}

void FlowNetwork::fill_component() {
  // Progressive filling restricted to one component. All flows start at
  // zero and unfrozen flows grow uniformly until some link saturates; flows
  // crossing a saturated link freeze at their current rate. Every
  // arithmetic step is elementwise (and min is exact), so the result is a
  // pure function of the component's membership and capacities,
  // independent of iteration order — which is what makes incremental
  // refills bitwise-reproducible against the from-scratch oracle.
  for (std::uint32_t li : comp_links_) {
    LinkState& ls = link_states_[li];
    ls.headroom = links_[li]->capacity();
    ls.unfrozen = static_cast<std::uint32_t>(ls.members.size());
    ls.throughput = 0.0;
  }
  // Flow-id order makes each link's throughput accumulate in arrival
  // order regardless of the walk's discovery order, so the sums (which,
  // unlike the rates, are order-sensitive in floating point) are
  // deterministic and oracle-comparable.
  std::sort(comp_flows_.begin(), comp_flows_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return flow_slots_[a].id < flow_slots_[b].id;
            });
  unfrozen_.clear();
  for (std::uint32_t s : comp_flows_) {
    flow_slots_[s].rate = 0.0;
    unfrozen_.push_back(s);
  }
  while (!unfrozen_.empty()) {
    // The next link to saturate bounds the uniform rate increase.
    double delta = std::numeric_limits<double>::infinity();
    for (std::uint32_t li : comp_links_) {
      const LinkState& ls = link_states_[li];
      if (ls.unfrozen > 0) delta = std::min(delta, ls.headroom / ls.unfrozen);
    }
    if (!std::isfinite(delta)) break;  // no loaded links remain

    for (std::uint32_t s : unfrozen_) flow_slots_[s].rate += delta;
    for (std::uint32_t li : comp_links_) {
      LinkState& ls = link_states_[li];
      ls.headroom -= delta * ls.unfrozen;
    }

    // Freeze flows that cross any saturated link.
    still_unfrozen_.clear();
    for (std::uint32_t s : unfrozen_) {
      Flow& f = flow_slots_[s];
      bool saturated = false;
      for (Link* l : f.path) {
        if (state_of(l).headroom <= 1e-9 * l->capacity()) {
          saturated = true;
          break;
        }
      }
      if (saturated) {
        for (Link* l : f.path) --state_of(l).unfrozen;
      } else {
        still_unfrozen_.push_back(s);
      }
    }
    if (still_unfrozen_.size() == unfrozen_.size()) {
      // Numerical stall guard: freeze everything crossing the tightest link.
      break;
    }
    unfrozen_.swap(still_unfrozen_);
  }
  for (std::uint32_t s : comp_flows_) {
    const Flow& f = flow_slots_[s];
    for (std::size_t i = 0; i < f.path.size(); ++i) {
      if (f.first_mask >> i & 1ull) state_of(f.path[i]).throughput += f.rate;
    }
  }
}

void FlowNetwork::verify_against_oracle() const {
  // Independent from-scratch recompute: decompose all active flows into
  // connected components and run progressive filling per component. The
  // incremental engine must match bitwise — any ulp of drift here means a
  // stale component was skipped or a membership structure is corrupt.
  std::vector<double> rate(flow_slots_.size(), 0.0);
  std::vector<double> thr(link_states_.size(), 0.0);
  std::vector<char> fseen(flow_slots_.size(), 0);
  std::vector<char> lseen(link_states_.size(), 0);
  std::vector<double> headroom(link_states_.size(), 0.0);
  std::vector<std::uint32_t> ucount(link_states_.size(), 0);

  std::vector<std::uint32_t> order(active_.begin(), active_.end());
  std::sort(order.begin(), order.end(), [this](std::uint32_t a, std::uint32_t b) {
    return flow_slots_[a].id < flow_slots_[b].id;
  });

  std::vector<std::uint32_t> cflows, clinks, stack, unfrozen, still;
  for (std::uint32_t seed : order) {
    if (fseen[seed]) continue;
    cflows.clear();
    clinks.clear();
    stack.clear();
    fseen[seed] = 1;
    cflows.push_back(seed);
    stack.push_back(seed);
    while (!stack.empty()) {
      std::uint32_t fs = stack.back();
      stack.pop_back();
      for (Link* l : flow_slots_[fs].path) {
        std::uint32_t li = l->net_index();
        if (lseen[li]) continue;
        lseen[li] = 1;
        clinks.push_back(li);
        for (const Member& m : link_states_[li].members) {
          if (fseen[m.flow_slot]) continue;
          fseen[m.flow_slot] = 1;
          cflows.push_back(m.flow_slot);
          stack.push_back(m.flow_slot);
        }
      }
    }
    for (std::uint32_t li : clinks) {
      headroom[li] = links_[li]->capacity();
      ucount[li] = static_cast<std::uint32_t>(link_states_[li].members.size());
    }
    unfrozen = cflows;
    while (!unfrozen.empty()) {
      double delta = std::numeric_limits<double>::infinity();
      for (std::uint32_t li : clinks)
        if (ucount[li] > 0) delta = std::min(delta, headroom[li] / ucount[li]);
      if (!std::isfinite(delta)) break;
      for (std::uint32_t fs : unfrozen) rate[fs] += delta;
      for (std::uint32_t li : clinks) headroom[li] -= delta * ucount[li];
      still.clear();
      for (std::uint32_t fs : unfrozen) {
        bool saturated = false;
        for (Link* l : flow_slots_[fs].path) {
          if (headroom[l->net_index()] <= 1e-9 * l->capacity()) {
            saturated = true;
            break;
          }
        }
        if (saturated) {
          for (Link* l : flow_slots_[fs].path) --ucount[l->net_index()];
        } else {
          still.push_back(fs);
        }
      }
      if (still.size() == unfrozen.size()) break;
      unfrozen.swap(still);
    }
  }
  for (std::uint32_t s : order) {
    const Flow& f = flow_slots_[s];
    for (std::size_t i = 0; i < f.path.size(); ++i)
      if (f.first_mask >> i & 1ull) thr[f.path[i]->net_index()] += rate[s];
  }

  for (std::uint32_t s : active_) {
    if (rate[s] != flow_slots_[s].rate)
      throw std::logic_error(
          "FlowNetwork verify: incremental max-min rate diverged from the "
          "progressive-filling oracle");
  }
  for (std::size_t li = 0; li < link_states_.size(); ++li) {
    if (thr[li] != link_states_[li].throughput)
      throw std::logic_error(
          "FlowNetwork verify: incremental link throughput diverged from the "
          "progressive-filling oracle");
  }
}

void FlowNetwork::rebalance() {
  // Smallest delay that still advances the simulated clock at the current
  // magnitude; a residual below it can never drain through the event loop
  // (now + dt == now in double), so such flows are completed immediately.
  const double min_progress = std::max(1e-12, sim_.now() * 1e-12);

  double next = 0.0;
  while (true) {
    // Complete drained flows (settle() must have been called beforehand).
    finished_.clear();
    for (std::uint32_t s : active_)
      if (flow_slots_[s].remaining <= kDrainEpsilonBytes) finished_.push_back(s);
    if (!finished_.empty()) {
      // Waiters resume in arrival order — active_ is scrambled by
      // swap-and-pop, so restore the deterministic completion order.
      std::sort(finished_.begin(), finished_.end(),
                [this](std::uint32_t a, std::uint32_t b) {
                  return flow_slots_[a].id < flow_slots_[b].id;
                });
      finished_events_.clear();
      for (std::uint32_t s : finished_) {
        finished_events_.push_back(std::move(flow_slots_[s].done));
        remove_flow(s);
      }
      for (auto& ev : finished_events_) ev->trigger();
      finished_events_.clear();
    }

    refill_dirty();
    if (verify_) verify_against_oracle();

    if (active_.empty()) {
      if (pending_completion_.valid()) {
        sim_.cancel(pending_completion_);
        pending_completion_ = {};
      }
      return;
    }

    next = std::numeric_limits<double>::infinity();
    for (std::uint32_t s : active_) {
      const Flow& f = flow_slots_[s];
      if (f.rate > 0.0) next = std::min(next, f.remaining / f.rate);
    }
    if (!std::isfinite(next))
      throw std::logic_error(
          "FlowNetwork: active flows with zero rate (link with no capacity?)");
    if (next >= min_progress) break;

    // Sub-resolution residues: drain them now and go round again.
    for (std::uint32_t s : active_) {
      Flow& f = flow_slots_[s];
      if (f.rate > 0.0 && f.remaining / f.rate < min_progress) f.remaining = 0.0;
    }
  }

  if (pending_completion_.valid()) sim_.cancel(pending_completion_);
  pending_completion_ = sim_.schedule(next, [this] {
    pending_completion_ = {};
    // Completion work joins the timestamp's batch flush: when a round of
    // chunks drains together, the scan + refill runs once, not per chunk.
    mark_dirty_and_arm();
  });
}

}  // namespace stash::hw
