#include "hw/topology.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace stash::hw {

namespace {

// DGX-1V-style hybrid cube mesh used by p3.16xlarge (paper Fig 1): two
// fully-connected quads {0..3} and {4..7} plus the cross edges i <-> i+4.
std::vector<std::pair<int, int>> cube_mesh_8() {
  std::vector<std::pair<int, int>> edges;
  for (int base : {0, 4})
    for (int i = base; i < base + 4; ++i)
      for (int j = i + 1; j < base + 4; ++j) edges.emplace_back(i, j);
  for (int i = 0; i < 4; ++i) edges.emplace_back(i, i + 4);
  return edges;
}

std::vector<std::pair<int, int>> full_mesh(int n) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  return edges;
}

}  // namespace

Machine::Machine(FlowNetwork& net, sim::Simulator& sim, MachineConfig config,
                 int machine_id, const Machine* ring_donor)
    : config_(std::move(config)), id_(machine_id) {
  if (config_.num_gpus < 1) throw std::invalid_argument("Machine needs >= 1 GPU");
  if (config_.pcie_lane_bw <= 0 || config_.host_bridge_bw <= 0)
    throw std::invalid_argument("Machine needs PCIe bandwidths");

  if (config_.interconnect != InterconnectKind::kPcieOnly && config_.nvlink_pairs.empty()) {
    if (config_.interconnect == InterconnectKind::kNvswitch) {
      config_.nvlink_pairs = full_mesh(config_.num_gpus);
    } else if (config_.num_gpus == 8) {
      config_.nvlink_pairs = cube_mesh_8();
    } else if (config_.num_gpus == 4) {
      config_.nvlink_pairs = full_mesh(4);
    } else if (config_.num_gpus > 1) {
      throw std::invalid_argument(
          "NVLink machine with " + std::to_string(config_.num_gpus) +
          " GPUs requires explicit nvlink_pairs");
    }
  }

  build_links(net);
  // The ring order is a pure function of (num_gpus, interconnect, NVLink
  // adjacency) — compare post-defaulting, since the donor's config_ already
  // has its built-in mesh filled in. A matching donor short-circuits the
  // exhaustive permutation search.
  if (ring_donor != nullptr && ring_donor->config_.num_gpus == config_.num_gpus &&
      ring_donor->config_.interconnect == config_.interconnect &&
      ring_donor->config_.nvlink_pairs == config_.nvlink_pairs) {
    ring_order_ = ring_donor->ring_order_;
    ring_pcie_hops_ = ring_donor->ring_pcie_hops_;
  } else {
    compute_ring_order();
  }

  storage_ = std::make_unique<StorageDevice>(
      net, config_.name + "#" + std::to_string(id_) + ".ssd", config_.ssd_bw,
      config_.ssd_latency);
  cpus_ = std::make_unique<CpuPool>(sim, config_.vcpus);
}

void Machine::build_links(FlowNetwork& net) {
  const std::string prefix = config_.name + "#" + std::to_string(id_) + ".";
  for (int g = 0; g < config_.num_gpus; ++g) {
    pcie_up_.push_back(net.add_link(prefix + "pcie_up" + std::to_string(g),
                                    config_.pcie_lane_bw));
    pcie_down_.push_back(net.add_link(prefix + "pcie_down" + std::to_string(g),
                                      config_.pcie_lane_bw));
  }
  host_bridge_ = net.add_link(prefix + "host_bridge", config_.host_bridge_bw);

  nvlink_.assign(static_cast<std::size_t>(config_.num_gpus),
                 std::vector<Link*>(static_cast<std::size_t>(config_.num_gpus), nullptr));
  for (auto [i, j] : config_.nvlink_pairs) {
    if (i < 0 || j < 0 || i >= config_.num_gpus || j >= config_.num_gpus || i == j)
      throw std::invalid_argument("invalid nvlink pair");
    if (config_.nvlink_bw <= 0) throw std::invalid_argument("nvlink_bw must be set");
    auto si = static_cast<std::size_t>(i);
    auto sj = static_cast<std::size_t>(j);
    nvlink_[si][sj] = net.add_link(
        prefix + "nvl" + std::to_string(i) + "_" + std::to_string(j), config_.nvlink_bw);
    nvlink_[sj][si] = net.add_link(
        prefix + "nvl" + std::to_string(j) + "_" + std::to_string(i), config_.nvlink_bw);
  }

  if (config_.nic_bw > 0) {
    nic_tx_ = net.add_link(prefix + "nic_tx", config_.nic_bw);
    nic_rx_ = net.add_link(prefix + "nic_rx", config_.nic_bw);
  }
}

bool Machine::nvlink_connected(int i, int j) const {
  if (i == j) return false;
  if (i < 0 || j < 0 || i >= config_.num_gpus || j >= config_.num_gpus) return false;
  return nvlink_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] != nullptr;
}

std::vector<Link*> Machine::gpu_to_gpu_path(int src, int dst) const {
  if (src == dst) return {};
  if (src < 0 || dst < 0 || src >= config_.num_gpus || dst >= config_.num_gpus)
    throw std::out_of_range("gpu_to_gpu_path: GPU index out of range");
  if (nvlink_connected(src, dst))
    return {nvlink_[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)]};
  // PCIe peer-to-peer is staged through host memory, so the payload crosses
  // the root complex twice (GPU -> host, host -> GPU). The host bridge
  // appears twice in the path and the max-min allocator charges it per
  // traversal, halving the effective peer bandwidth — this is what makes
  // PCIe rings so expensive on the 16xlarge (paper §V-A1).
  return {pcie_up_[static_cast<std::size_t>(src)], host_bridge_, host_bridge_,
          pcie_down_[static_cast<std::size_t>(dst)]};
}

std::vector<Link*> Machine::h2d_path(int gpu) const {
  if (gpu < 0 || gpu >= config_.num_gpus) throw std::out_of_range("h2d_path: bad GPU");
  return {host_bridge_, pcie_down_[static_cast<std::size_t>(gpu)]};
}

void Machine::compute_ring_order() {
  const int n = config_.num_gpus;
  ring_order_.resize(static_cast<std::size_t>(n));
  std::iota(ring_order_.begin(), ring_order_.end(), 0);
  ring_pcie_hops_ = 0;
  if (n <= 2 || config_.interconnect == InterconnectKind::kPcieOnly) {
    if (config_.interconnect != InterconnectKind::kPcieOnly && n == 2)
      ring_pcie_hops_ = nvlink_connected(0, 1) ? 0 : 2;
    return;
  }

  auto pcie_hops = [&](const std::vector<int>& order) {
    int hops = 0;
    for (std::size_t k = 0; k < order.size(); ++k) {
      int a = order[k];
      int b = order[(k + 1) % order.size()];
      if (!nvlink_connected(a, b)) ++hops;
    }
    return hops;
  };

  if (n <= 8) {
    // Exhaustive over rings with GPU 0 first (rings are rotation-invariant).
    std::vector<int> perm(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    std::vector<int> best = perm;
    int best_hops = pcie_hops(perm);
    while (std::next_permutation(perm.begin() + 1, perm.end())) {
      int h = pcie_hops(perm);
      if (h < best_hops) {
        best_hops = h;
        best = perm;
        if (h == 0) break;
      }
    }
    ring_order_ = best;
    ring_pcie_hops_ = best_hops;
    return;
  }

  // Greedy nearest-neighbour for larger counts: prefer NVLink edges.
  std::vector<int> order{0};
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  used[0] = true;
  while (static_cast<int>(order.size()) < n) {
    int cur = order.back();
    int next = -1;
    for (int cand = 0; cand < n; ++cand)
      if (!used[static_cast<std::size_t>(cand)] && nvlink_connected(cur, cand)) {
        next = cand;
        break;
      }
    if (next < 0)
      for (int cand = 0; cand < n; ++cand)
        if (!used[static_cast<std::size_t>(cand)]) {
          next = cand;
          break;
        }
    order.push_back(next);
    used[static_cast<std::size_t>(next)] = true;
  }
  ring_order_ = order;
  ring_pcie_hops_ = pcie_hops(order);
}

SampleCache& Machine::cache(double bytes_per_sample) {
  if (!cache_) {
    // Reserve ~15% of DRAM for the OS, frameworks and batch buffers.
    cache_ = std::make_unique<SampleCache>(config_.dram_bytes * 0.85, bytes_per_sample);
  }
  return *cache_;
}

Cluster::Cluster(FlowNetwork& net, sim::Simulator& sim,
                 std::vector<MachineConfig> configs, double fabric_bw) {
  if (configs.empty()) throw std::invalid_argument("Cluster needs >= 1 machine");
  for (std::size_t m = 0; m < configs.size(); ++m) {
    const Machine* donor = machines_.empty() ? nullptr : machines_.back().get();
    machines_.push_back(std::make_unique<Machine>(net, sim, configs[m],
                                                  static_cast<int>(m), donor));
  }
  if (machines_.size() > 1) {
    for (const auto& mach : machines_)
      if (mach->nic_tx() == nullptr)
        throw std::invalid_argument("multi-machine cluster requires NICs (nic_bw > 0)");
    fabric_ = net.add_link("fabric", fabric_bw);
  }
}

int Cluster::total_gpus() const {
  int total = 0;
  for (const auto& m : machines_) total += m->num_gpus();
  return total;
}

std::vector<GpuRef> Cluster::ring_order() const {
  std::vector<GpuRef> order;
  for (const auto& m : machines_)
    for (int g : m->ring_order()) order.push_back(GpuRef{m->id(), g});
  return order;
}

std::vector<Link*> Cluster::path(GpuRef src, GpuRef dst) const {
  if (src.machine == dst.machine)
    return machine(src.machine).gpu_to_gpu_path(src.local, dst.local);
  const Machine& a = machine(src.machine);
  const Machine& b = machine(dst.machine);
  // Cross-machine: device -> host bridge -> NIC -> fabric -> NIC -> host
  // bridge -> device. Crossing traffic shares the host bridges with
  // intra-node H2D copies, so the two kinds of flows contend realistically.
  return {a.pcie_up(src.local), a.host_bridge(), a.nic_tx(), fabric_,
          b.nic_rx(),           b.host_bridge(), b.pcie_down(dst.local)};
}

}  // namespace stash::hw
