// Flow-level bandwidth sharing with max-min fairness.
//
// The FlowNetwork simulates data transfers as fluid flows over paths of
// Links. At any instant, each active flow receives the max-min fair rate
// computed by progressive filling: all flows grow at the same rate until a
// link saturates, flows through saturated links freeze, and the rest keep
// growing. Rates are recomputed whenever a flow starts or completes (the
// only capacity-changing events), making the model event-driven and exact
// for piecewise-constant rate allocations.
//
// This is the standard fluid approximation used by flow-level network
// simulators; it reproduces the paper's three hardware effects:
//   * PCIe host-bridge contention on p2.16xlarge (Fig 7): sixteen H2D flows
//     share one bridge, so each sees ~1/16 of it;
//   * NVLink crossbar rings: disjoint hop links, no sharing, full rate;
//   * slow-NIC bottleneck: a ring crossing a 10 Gbps NIC is throttled to it.
//
// Incremental rebalancing: progressive filling is a per-connected-component
// computation — flows that share no link (directly or transitively) cannot
// affect each other's rates. The network therefore keeps per-link member
// lists and, on each transition (flow arrival/departure, capacity change),
// walks outward from the touched links to find the affected component(s)
// and refills only those; every other component keeps its rates. Because
// filling restricted to a component is a pure, iteration-order-independent
// function of its membership and capacities, the incrementally maintained
// rates are *bitwise* equal to a from-scratch per-component recompute — a
// property the verify mode (on by default in debug builds) cross-checks
// after every refill against an independent oracle.
//
// Rebalance deferral: transitions mark the network dirty and arm a
// Simulator batch-flush hook instead of refilling inline, so a collective
// step that starts or completes hundreds of flows at one timestamp pays for
// one settle + one refill pass, not one per flow. Observer methods
// (link_throughput, active_flows) flush first, so callers never see stale
// state — the deferral is invisible except in speed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/link.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace stash::hw {

class FlowNetwork {
 public:
  explicit FlowNetwork(sim::Simulator& sim);
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  // Creates a link owned by this network; the returned pointer is stable.
  Link* add_link(std::string name, double capacity_bytes_per_s);

  // Transfers `bytes` along `path` after an initial `latency_s`, completing
  // when the last byte drains. An empty path models an on-device copy and
  // completes after the latency alone. Zero-byte transfers complete after
  // the latency.
  sim::Task<void> transfer(double bytes, std::vector<Link*> path, double latency_s = 0.0);

  // Instantaneous max-min fair rate of the flows currently on `link`
  // (bytes/s, sum over flows — each flow counted once even if its path
  // traverses the link twice). For tests and the Fig 7 bandwidth probe.
  double link_throughput(const Link* link) const;

  // Changes a link's capacity mid-simulation: in-flight flows are settled
  // at their old rates up to now, then re-shared. Models time-varying
  // network QoS (the paper's §III point that AWS bandwidth is subject to
  // high temporal variation).
  void update_capacity(Link* link, double capacity_bytes_per_s);

  std::size_t active_flows() const;
  std::size_t num_links() const { return links_.size(); }

  // Every link created on this network, in creation order (stable, so the
  // telemetry export enumerating it is deterministic).
  std::vector<const Link*> links() const {
    std::vector<const Link*> out;
    out.reserve(links_.size());
    for (const auto& l : links_) out.push_back(l.get());
    return out;
  }

  // Cross-checks the incrementally maintained rates against a from-scratch
  // per-component progressive-filling oracle after every refill; throws
  // std::logic_error on any bitwise mismatch. Defaults to on when NDEBUG is
  // not defined, off otherwise.
  void set_verify(bool on) { verify_ = on; }
  bool verify() const { return verify_; }

  // Incremental-engine telemetry: refill passes run and total flows visited
  // across them. refill_flow_visits() / (refills() * active_flows()) ≪ 1
  // is the incremental win over global recomputation.
  std::uint64_t refills() const { return refills_; }
  std::uint64_t refill_flow_visits() const { return refill_flow_visits_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Flow {
    std::uint64_t id = 0;            // monotonic arrival id (trigger order)
    double remaining = 0.0;          // bytes left to transfer
    double rate = 0.0;               // current fair-share rate, bytes/s
    std::vector<Link*> path;         // one entry per traversal
    std::vector<std::uint32_t> member_pos;  // position in each link's members
    std::uint64_t first_mask = 0;    // bit i set: path[i] is the first
                                     // traversal of that link in this path
    std::shared_ptr<sim::Event> done;
    std::uint32_t active_pos = kNil;  // position in active_ (kNil = free slot)
    std::uint32_t next_free = kNil;   // free-list link
    std::uint64_t epoch = 0;          // component-walk visit stamp
  };

  // One traversal of a link by an active flow. A path that crosses a link
  // twice (the PCIe host bridge round trip) contributes two members.
  struct Member {
    std::uint32_t flow_slot;
    std::uint32_t path_idx;
  };

  struct LinkState {
    std::vector<Member> members;   // flows currently on this link
    double throughput = 0.0;       // sum of member flows' rates (flow counted once)
    std::uint32_t busy_pos = kNil;  // position in busy_links_ (kNil = idle)
    bool dirty = false;
    std::uint64_t epoch = 0;       // component-walk visit stamp
    // Progressive-filling scratch (valid only during a refill pass).
    double headroom = 0.0;
    std::uint32_t unfrozen = 0;
  };

  LinkState& state_of(const Link* l) { return link_states_[l->net_index()]; }
  void check_owned(const Link* l) const;

  // Advances all flows' remaining bytes (and busy links' busy seconds) to
  // the current simulated time. Only the first call at a timestamp does
  // work, so calling it per transition costs O(1) amortized per timestamp.
  void settle();
  // Runs the deferred settle + rebalance if any transition marked the
  // network dirty since the last pass. Invoked by the Simulator's
  // batch-flush hook and by the observer read-barrier.
  void flush();
  void mark_dirty_and_arm();
  void mark_link_dirty(std::uint32_t link_idx);
  // Completes drained flows, refills the affected components, and
  // (re)schedules the next completion event.
  void rebalance();
  // Walks outward from each dirty link to its connected component and
  // re-runs progressive filling on that component alone.
  void refill_dirty();
  void fill_component();
  void verify_against_oracle() const;
  std::uint32_t alloc_flow();
  void remove_flow(std::uint32_t slot);

  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<LinkState> link_states_;   // parallel to links_
  std::vector<Flow> flow_slots_;         // slab; freed slots reused via free list
  std::uint32_t free_head_ = kNil;
  std::vector<std::uint32_t> active_;    // slots of in-flight flows (unordered)
  std::vector<std::uint32_t> busy_links_;  // link indices with >= 1 member
  std::vector<std::uint32_t> dirty_links_;  // touched since last refill
  double last_settle_ = 0.0;
  std::uint64_t next_flow_id_ = 1;
  std::uint64_t epoch_ = 0;
  sim::EventId pending_completion_{};
  std::size_t flush_hook_ = 0;
  bool needs_rebalance_ = false;
  bool verify_ = false;
  std::uint64_t refills_ = 0;
  std::uint64_t refill_flow_visits_ = 0;

  // Reused per-pass scratch (no steady-state allocation).
  std::vector<std::uint32_t> comp_links_;
  std::vector<std::uint32_t> comp_flows_;
  std::vector<std::uint32_t> walk_stack_;
  std::vector<std::uint32_t> unfrozen_;
  std::vector<std::uint32_t> still_unfrozen_;
  std::vector<std::uint32_t> finished_;
  std::vector<std::shared_ptr<sim::Event>> finished_events_;
};

}  // namespace stash::hw
