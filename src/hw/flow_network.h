// Flow-level bandwidth sharing with max-min fairness.
//
// The FlowNetwork simulates data transfers as fluid flows over paths of
// Links. At any instant, each active flow receives the max-min fair rate
// computed by progressive filling: all flows grow at the same rate until a
// link saturates, flows through saturated links freeze, and the rest keep
// growing. Rates are recomputed whenever a flow starts or completes (the
// only capacity-changing events), making the model event-driven and exact
// for piecewise-constant rate allocations.
//
// This is the standard fluid approximation used by flow-level network
// simulators; it reproduces the paper's three hardware effects:
//   * PCIe host-bridge contention on p2.16xlarge (Fig 7): sixteen H2D flows
//     share one bridge, so each sees ~1/16 of it;
//   * NVLink crossbar rings: disjoint hop links, no sharing, full rate;
//   * slow-NIC bottleneck: a ring crossing a 10 Gbps NIC is throttled to it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/link.h"
#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace stash::hw {

class FlowNetwork {
 public:
  explicit FlowNetwork(sim::Simulator& sim) : sim_(sim) {}
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  // Creates a link owned by this network; the returned pointer is stable.
  Link* add_link(std::string name, double capacity_bytes_per_s);

  // Transfers `bytes` along `path` after an initial `latency_s`, completing
  // when the last byte drains. An empty path models an on-device copy and
  // completes after the latency alone. Zero-byte transfers complete after
  // the latency.
  sim::Task<void> transfer(double bytes, std::vector<Link*> path, double latency_s = 0.0);

  // Instantaneous max-min fair rate of the flows currently on `link`
  // (bytes/s, sum over flows). For tests and the Fig 7 bandwidth probe.
  double link_throughput(const Link* link) const;

  // Changes a link's capacity mid-simulation: in-flight flows are settled
  // at their old rates up to now, then re-shared. Models time-varying
  // network QoS (the paper's §III point that AWS bandwidth is subject to
  // high temporal variation).
  void update_capacity(Link* link, double capacity_bytes_per_s);

  std::size_t active_flows() const { return flows_.size(); }
  std::size_t num_links() const { return links_.size(); }

  // Every link created on this network, in creation order (stable, so the
  // telemetry export enumerating it is deterministic).
  std::vector<const Link*> links() const {
    std::vector<const Link*> out;
    out.reserve(links_.size());
    for (const auto& l : links_) out.push_back(l.get());
    return out;
  }

 private:
  struct Flow {
    std::uint64_t id;
    double remaining;               // bytes left to transfer
    double rate = 0.0;              // current fair-share rate, bytes/s
    std::vector<Link*> path;
    std::shared_ptr<sim::Event> done;
  };

  // Advances all flows' remaining bytes to the current simulated time.
  void settle();
  // Completes drained flows, recomputes max-min rates, and (re)schedules
  // the next completion event.
  void rebalance();
  void compute_max_min_rates();

  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Flow> flows_;
  double last_settle_ = 0.0;
  std::uint64_t next_flow_id_ = 1;
  sim::EventId pending_completion_{};
};

}  // namespace stash::hw
