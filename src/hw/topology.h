// Machine and cluster topologies.
//
// A Machine is a set of GPUs joined by an interconnect (PCIe tree, or PCIe
// plus an NVLink crossbar), with a NIC, an SSD, a vCPU pool and a DRAM
// cache. A Cluster is one or more machines joined by a network fabric.
// Both expose link-level *paths* that the collectives and the input
// pipeline route their flows over:
//
//   PCIe machine      gpu_i -> [pcie_up_i, host_bridge, pcie_down_j] -> gpu_j
//   NVLink machine    gpu_i -> [nvlink_ij] -> gpu_j          (if adjacent)
//                     gpu_i -> PCIe path                     (otherwise)
//   cross machine     gpu_i -> [pcie_up_i, nic_tx_A, fabric, nic_rx_B,
//                               pcie_down_j] -> gpu_j
//
// The PCIe host bridge is a single shared link whose capacity is constant
// across instance sizes of a family — the paper's explanation for the
// p2.16xlarge bandwidth "slicing" (Fig 7, §V-A1).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "hw/cpu.h"
#include "hw/flow_network.h"
#include "hw/gpu.h"
#include "hw/storage.h"
#include "sim/simulator.h"

namespace stash::hw {

enum class InterconnectKind {
  kPcieOnly,    // P2 family, p3.2xlarge
  kPcieNvlink,  // P3 multi-GPU: NVLink crossbar, PCIe fallback
  kNvswitch,    // P4 (catalog only)
};

struct MachineConfig {
  std::string name;  // used to label links, e.g. "p2.16xlarge#0"
  int num_gpus = 1;
  GpuSpec gpu;
  InterconnectKind interconnect = InterconnectKind::kPcieOnly;

  double pcie_lane_bw = 0.0;    // per-GPU PCIe bandwidth (bytes/s)
  double host_bridge_bw = 0.0;  // shared root-complex bandwidth (bytes/s)
  double nvlink_bw = 0.0;       // per NVLink-edge bandwidth (bytes/s)
  // NVLink adjacency as unordered GPU-id pairs. Empty with kPcieNvlink and
  // 8 GPUs selects the built-in hybrid-cube-mesh (Fig 1); with 4 GPUs the
  // full quad. kNvswitch treats every pair as adjacent.
  std::vector<std::pair<int, int>> nvlink_pairs;

  double nic_bw = 0.0;  // instance network bandwidth (bytes/s)
  int vcpus = 1;
  double dram_bytes = 0.0;
  double ssd_bw = 0.0;
  double ssd_latency = 0.0;
};

class Machine {
 public:
  // Creates the machine's links inside `net`. `machine_id` namespaces link
  // names when several machines share a FlowNetwork. `ring_donor`, when it
  // has the same GPU count, interconnect and NVLink adjacency, donates its
  // already-computed ring order — building a 1024-machine homogeneous
  // cluster then runs the exhaustive ring search once instead of 1024 times.
  Machine(FlowNetwork& net, sim::Simulator& sim, MachineConfig config, int machine_id,
          const Machine* ring_donor = nullptr);
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  int id() const { return id_; }
  int num_gpus() const { return config_.num_gpus; }
  const MachineConfig& config() const { return config_; }
  const GpuSpec& gpu() const { return config_.gpu; }

  bool nvlink_connected(int i, int j) const;

  // Link path for a GPU-to-GPU transfer inside this machine.
  std::vector<Link*> gpu_to_gpu_path(int src, int dst) const;
  // Host-memory-to-device path (minibatch upload); always PCIe.
  std::vector<Link*> h2d_path(int gpu) const;

  // GPU visit order that minimizes the number of non-NVLink hops in a ring
  // (exhaustive over <= 8 GPUs, greedy beyond). For PCIe-only machines this
  // is just 0..n-1.
  const std::vector<int>& ring_order() const { return ring_order_; }
  // Number of ring hops that fall back to PCIe (0 on a full crossbar).
  int ring_pcie_hops() const { return ring_pcie_hops_; }

  Link* nic_tx() const { return nic_tx_; }
  Link* nic_rx() const { return nic_rx_; }
  Link* pcie_up(int gpu) const { return pcie_up_.at(static_cast<std::size_t>(gpu)); }
  Link* pcie_down(int gpu) const { return pcie_down_.at(static_cast<std::size_t>(gpu)); }
  Link* host_bridge() const { return host_bridge_; }

  StorageDevice& storage() { return *storage_; }
  CpuPool& cpus() { return *cpus_; }
  SampleCache& cache(double bytes_per_sample);  // lazily sized DRAM cache

 private:
  void build_links(FlowNetwork& net);
  void compute_ring_order();

  MachineConfig config_;
  int id_;
  std::vector<Link*> pcie_up_;    // GPU -> host
  std::vector<Link*> pcie_down_;  // host -> GPU
  Link* host_bridge_ = nullptr;
  // nvlink_[i][j]: directed link i->j, null if not adjacent.
  std::vector<std::vector<Link*>> nvlink_;
  Link* nic_tx_ = nullptr;
  Link* nic_rx_ = nullptr;
  std::unique_ptr<StorageDevice> storage_;
  std::unique_ptr<CpuPool> cpus_;
  std::unique_ptr<SampleCache> cache_;
  std::vector<int> ring_order_;
  int ring_pcie_hops_ = 0;
};

// Global reference to one GPU in a cluster.
struct GpuRef {
  int machine = 0;
  int local = 0;
  bool operator==(const GpuRef&) const = default;
};

class Cluster {
 public:
  // Builds `configs.size()` machines joined by a fabric of `fabric_bw`
  // bytes/s (effectively unlimited inside one placement group; the NICs are
  // the real constraint).
  Cluster(FlowNetwork& net, sim::Simulator& sim, std::vector<MachineConfig> configs,
          double fabric_bw);

  std::size_t num_machines() const { return machines_.size(); }
  Machine& machine(int i) { return *machines_.at(static_cast<std::size_t>(i)); }
  const Machine& machine(int i) const { return *machines_.at(static_cast<std::size_t>(i)); }
  int total_gpus() const;

  // Flattened GPU list in ring order: machines in index order, each
  // machine's GPUs in its ring order.
  std::vector<GpuRef> ring_order() const;

  // Link path between two GPUs anywhere in the cluster.
  std::vector<Link*> path(GpuRef src, GpuRef dst) const;

  Link* fabric() const { return fabric_; }
  bool multi_machine() const { return machines_.size() > 1; }

 private:
  std::vector<std::unique_ptr<Machine>> machines_;
  Link* fabric_ = nullptr;
};

}  // namespace stash::hw
