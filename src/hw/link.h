// A unidirectional bandwidth-limited link in the hardware graph.
//
// Links represent every shared medium in the simulated machines: a PCIe
// lane from a GPU to the host bridge, the host bridge itself, an NVLink
// between two GPUs, a NIC, the inter-machine network fabric, or an SSD's
// read channel. The FlowNetwork shares each link's capacity among active
// flows with max-min fairness.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace stash::hw {

class Link {
 public:
  Link(std::string name, double capacity_bytes_per_s)
      : name_(std::move(name)), capacity_(capacity_bytes_per_s) {
    if (capacity_ <= 0.0) throw std::invalid_argument("Link capacity must be positive");
  }

  const std::string& name() const { return name_; }
  double capacity() const { return capacity_; }

  // Capacity changes must go through FlowNetwork::update_capacity so that
  // in-flight flows are settled and re-shared; this setter is the low-level
  // half of that operation.
  void set_capacity(double capacity_bytes_per_s) {
    if (capacity_bytes_per_s <= 0.0)
      throw std::invalid_argument("Link capacity must be positive");
    capacity_ = capacity_bytes_per_s;
  }

  // Total bytes carried since construction (updated by the FlowNetwork as
  // flows progress); used by utilization reports and tests.
  double bytes_carried() const { return bytes_carried_; }
  void account_bytes(double bytes) { bytes_carried_ += bytes; }

  // Simulated seconds during which at least one flow was active on this
  // link (updated by the FlowNetwork at each settle). busy_seconds divided
  // by the run duration is the link's occupancy; bytes_carried divided by
  // (capacity * busy_seconds) its efficiency while busy.
  double busy_seconds() const { return busy_seconds_; }
  void account_busy(double seconds) { busy_seconds_ += seconds; }

  // Dense index assigned by the owning FlowNetwork at add_link time; maps
  // the pointer to the network's per-link flow state in O(1). Links are
  // only ever created through FlowNetwork::add_link, which sets it.
  std::uint32_t net_index() const { return net_index_; }
  void set_net_index(std::uint32_t idx) { net_index_ = idx; }

 private:
  std::string name_;
  double capacity_;  // bytes per second
  double bytes_carried_ = 0.0;
  double busy_seconds_ = 0.0;
  std::uint32_t net_index_ = 0;
};

}  // namespace stash::hw
