// vCPU pool for input pre-processing.
//
// Each data-loader worker occupies one vCPU while decoding/augmenting a
// batch. When loader workers outnumber vCPUs the pool becomes the
// bottleneck and prep stalls appear; on AWS P instances vCPUs are plentiful
// (8-96), which is why the paper measures negligible CPU stalls (Figs 4a,
// 8a, 9a).
#pragma once

#include "sim/simulator.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace stash::hw {

class CpuPool {
 public:
  CpuPool(sim::Simulator& sim, int vcpus)
      : sim_(sim), vcpus_(vcpus), cores_(sim, static_cast<std::size_t>(vcpus)) {
    if (vcpus <= 0) throw std::invalid_argument("CpuPool needs >= 1 vCPU");
  }

  // Occupies one vCPU for `cpu_seconds` of work.
  sim::Task<void> run(double cpu_seconds) {
    co_await cores_.acquire();
    co_await sim_.delay(cpu_seconds);
    cores_.release();
  }

  int vcpus() const { return vcpus_; }
  std::size_t idle_cores() const { return cores_.available(); }

 private:
  sim::Simulator& sim_;
  int vcpus_;
  sim::Semaphore cores_;
};

}  // namespace stash::hw
