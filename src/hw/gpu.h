// GPU compute model.
//
// A GPU is characterized by its effective training throughput (FLOP/s
// actually sustained by convnet/transformer kernels, ~50% of peak fp32)
// and its memory capacity. Compute phases of training are simulated as
// delays of `flops / effective_flops` seconds; data movement is simulated
// separately by the FlowNetwork over the GPU's PCIe/NVLink links.
#pragma once

#include <stdexcept>
#include <string>

namespace stash::hw {

struct GpuSpec {
  std::string name;              // e.g. "K80", "V100"
  double effective_flops = 0.0;  // sustained FLOP/s for DNN kernels
  double memory_bytes = 0.0;     // device memory capacity

  // Seconds needed to execute `flops` of work on this GPU.
  double compute_time(double flops) const {
    if (effective_flops <= 0.0) throw std::logic_error("GpuSpec has no throughput");
    return flops / effective_flops;
  }
};

// Catalog of the GPU dies used by the paper's instance families.
// Effective throughput is ~50% of peak fp32, the utilization convnets
// typically sustain (DESIGN.md §6).
GpuSpec k80_spec();
GpuSpec v100_spec(double memory_gib = 16.0);
GpuSpec a100_spec();

}  // namespace stash::hw
