// Storage device and DRAM page-cache models for the input pipeline.
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "hw/flow_network.h"
#include "sim/task.h"

namespace stash::hw {

// A bandwidth-limited storage device (the instance-attached gp2 SSD).
// Concurrent reads from the data-loader workers share the device's
// bandwidth via the FlowNetwork, producing the I/O contention that the
// paper observes on 16xlarge instances (Figs 4b, 8b, 9b).
class StorageDevice {
 public:
  StorageDevice(FlowNetwork& net, const std::string& name, double read_bw_bytes_per_s,
                double access_latency_s)
      : net_(net),
        link_(net.add_link(name + ".read", read_bw_bytes_per_s)),
        latency_(access_latency_s) {}

  // Reads `bytes`, completing when the last byte arrives. Concurrent reads
  // contend for the device's bandwidth.
  sim::Task<void> read(double bytes) { return net_.transfer(bytes, {link_}, latency_); }

  Link* link() { return link_; }
  double read_bandwidth() const { return link_->capacity(); }
  double access_latency() const { return latency_; }

 private:
  FlowNetwork& net_;
  Link* link_;
  double latency_;
};

// DRAM page-cache model at sample granularity with FIFO eviction.
//
// DS-Analyzer's methodology distinguishes a cold-cache epoch (step 3) from
// a fully-cached epoch (step 4); between those extremes the hit fraction is
// governed by how much of the dataset fits in main memory, which this
// model captures: samples are admitted on miss until the capacity is
// reached, then the oldest resident sample is evicted.
class SampleCache {
 public:
  SampleCache(double capacity_bytes, double bytes_per_sample)
      : capacity_samples_(bytes_per_sample > 0.0
                              ? static_cast<std::uint64_t>(capacity_bytes / bytes_per_sample)
                              : 0) {
    if (bytes_per_sample <= 0.0)
      throw std::invalid_argument("SampleCache: bytes_per_sample must be positive");
  }

  // True (and counts a hit) if the sample is resident; otherwise admits it
  // (evicting the oldest if full) and counts a miss.
  bool access(std::uint64_t sample_id) {
    if (resident_.contains(sample_id)) {
      ++hits_;
      return true;
    }
    ++misses_;
    if (capacity_samples_ == 0) return false;
    if (resident_.size() >= capacity_samples_) {
      resident_.erase(fifo_.front());
      fifo_.pop_front();
    }
    resident_.insert(sample_id);
    fifo_.push_back(sample_id);
    return false;
  }

  // Drops everything (DS-Analyzer clears OS caches before step 3).
  void clear() {
    resident_.clear();
    fifo_.clear();
  }

  std::uint64_t capacity_samples() const { return capacity_samples_; }
  std::uint64_t resident_samples() const { return resident_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void reset_counters() { hits_ = misses_ = 0; }

  double hit_rate() const {
    std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

 private:
  std::uint64_t capacity_samples_;
  std::unordered_set<std::uint64_t> resident_;
  std::deque<std::uint64_t> fifo_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace stash::hw
