#include "hw/gpu.h"

#include "util/units.h"

namespace stash::hw {

using util::gib;
using util::tflops;

GpuSpec k80_spec() {
  // One K80 die: 4.37 TFLOP/s peak fp32; DNN-effective ~2.0.
  return GpuSpec{"K80", tflops(2.0), gib(12)};
}

GpuSpec v100_spec(double memory_gib) {
  // V100: 15.7 TFLOP/s peak fp32; DNN-effective ~7.8. p3.24xlarge ships the
  // 32 GiB variant, every other P3 the 16 GiB one.
  return GpuSpec{"V100", tflops(7.8), gib(memory_gib)};
}

GpuSpec a100_spec() {
  // A100: 19.5 TFLOP/s peak fp32 (no tensor cores assumed), effective ~9.7;
  // P4 is out of the paper's characterization scope but kept for the catalog.
  return GpuSpec{"A100", tflops(9.7), gib(40)};
}

}  // namespace stash::hw
