// Discrete-event simulator core.
//
// The Simulator owns a time-ordered event queue and the root coroutine
// processes spawned onto it. Model code is written as coroutines that
// `co_await sim.delay(dt)` or await synchronization primitives (sim/sync.h);
// callbacks remain available for low-level components such as the flow
// network's rate recomputation.
//
// Determinism: events at equal timestamps fire in schedule order (a
// monotonically increasing sequence number breaks ties), so a run is a pure
// function of the model and its RNG seeds.
//
// Hot-path layout: callbacks live in a slab of fixed-size event records
// with inline storage for small callables (no per-event heap allocation
// for the lambdas this codebase schedules) and a free list for O(1)
// reuse. The binary heap holds plain {time, seq, slot, gen} entries over a
// reused vector, so steady-state scheduling allocates nothing. Cancelled
// events are deleted lazily — the slot's generation is bumped and the heap
// entry becomes stale — and the heap is compacted in place once stale
// entries outnumber live ones. EventIds carry the generation they were
// issued under, so cancel() on an id whose event already fired (or whose
// slot was since reused) is a checked no-op rather than a hazard.
//
// Same-timestamp batching: the run loop executes events one *timestamp* at
// a time. While a timestamp's events drain, anything scheduled at the
// current time (the zero-delay wake-ups every Event::trigger, Latch and
// Barrier release produces) is appended to a FIFO batch queue instead of
// round-tripping through the heap — O(1) instead of two O(log n) heap
// operations, and a collective step that fires thousands of simultaneous
// completions touches the heap once. Batch-flush hooks let components
// defer work until the batch drains: the FlowNetwork settles and
// rebalances once per timestamp instead of once per flow arrival.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/task.h"

namespace stash::sim {

using SimTime = double;  // seconds since simulation start

// Identifies a scheduled event for cancellation. `slot` is the event's
// position in the record slab (1-based; 0 = invalid) and `gen` the slot's
// generation when the event was issued: a fired or cancelled event bumps
// the generation, so stale ids can never cancel an unrelated event that
// later reuses the slot.
struct EventId {
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;
  bool valid() const { return slot != 0; }
};

// Move-only type-erased callable with inline small-object storage. Callables
// up to kInlineSize bytes that are nothrow-move-constructible live inside
// the event record itself; larger ones fall back to one heap allocation
// (rare: nothing in this codebase's hot paths exceeds the inline budget).
class InlineCallback {
 public:
  static constexpr std::size_t kInlineSize = 48;

  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  InlineCallback(InlineCallback&& o) noexcept { move_from(o); }
  InlineCallback& operator=(InlineCallback&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;
  ~InlineCallback() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(*this); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(*this);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(InlineCallback&);
    void (*move)(InlineCallback& dst, InlineCallback& src);  // construct dst, gut src
    void (*destroy)(InlineCallback&);
  };

  template <typename Fn>
  static Fn& as_inline(InlineCallback& c) {
    return *std::launder(reinterpret_cast<Fn*>(c.buf_));
  }
  template <typename Fn>
  static Fn*& as_heap(InlineCallback& c) {
    return *reinterpret_cast<Fn**>(c.buf_);
  }

  template <typename Fn>
  static void inline_invoke(InlineCallback& c) {
    as_inline<Fn>(c)();
  }
  template <typename Fn>
  static void inline_move(InlineCallback& d, InlineCallback& s) {
    ::new (static_cast<void*>(d.buf_)) Fn(std::move(as_inline<Fn>(s)));
    as_inline<Fn>(s).~Fn();
  }
  template <typename Fn>
  static void inline_destroy(InlineCallback& c) {
    as_inline<Fn>(c).~Fn();
  }
  template <typename Fn>
  static constexpr Ops inline_ops = {&inline_invoke<Fn>, &inline_move<Fn>,
                                     &inline_destroy<Fn>};

  template <typename Fn>
  static void heap_invoke(InlineCallback& c) {
    (*as_heap<Fn>(c))();
  }
  template <typename Fn>
  static void heap_move(InlineCallback& d, InlineCallback& s) {
    as_heap<Fn>(d) = as_heap<Fn>(s);
  }
  template <typename Fn>
  static void heap_destroy(InlineCallback& c) {
    delete as_heap<Fn>(c);
  }
  template <typename Fn>
  static constexpr Ops heap_ops = {&heap_invoke<Fn>, &heap_move<Fn>,
                                   &heap_destroy<Fn>};

  void move_from(InlineCallback& o) noexcept {
    if (o.ops_ != nullptr) {
      ops_ = o.ops_;
      ops_->move(*this, o);
      o.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

class Simulator {
 public:
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run `delay_s` seconds from now (>= 0).
  template <typename F>
  EventId schedule(SimTime delay_s, F&& fn) {
    if (delay_s < 0.0) throw_negative_delay();
    return schedule_at(now_ + delay_s, std::forward<F>(fn));
  }
  // Schedules `fn` at absolute simulated time `t` (>= now()).
  template <typename F>
  EventId schedule_at(SimTime t, F&& fn) {
    if (t < now_) throw_past_time();
    return schedule_impl(t, InlineCallback(std::forward<F>(fn)));
  }
  // Cancels a scheduled event. A checked no-op if the id is default, the
  // event already fired or was already cancelled — including when the slot
  // has since been reused by a newer event (the generation mismatch tells
  // them apart).
  void cancel(EventId id);

  // Spawns a root process starting at the current simulated time. The
  // Simulator keeps the task alive until it completes (or the Simulator is
  // destroyed, which reclaims unfinished process trees).
  void spawn(Task<void> task);

  // Awaitable that resumes the coroutine after `dt` simulated seconds.
  auto delay(SimTime dt) {
    struct Awaiter {
      Simulator& sim;
      SimTime dt;
      bool await_ready() const noexcept { return dt <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule(dt, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt};
  }

  // Runs until the event queue is empty. Rethrows the first exception
  // captured by any root process. Returns the final simulated time.
  SimTime run();
  // Runs until the queue is empty or simulated time would exceed `t`.
  SimTime run_until(SimTime t);

  // Registers a batch-flush hook and returns its id. Hooks run in
  // registration order at the *end* of a same-timestamp event batch (and
  // always before simulated time advances past the timestamp that armed
  // them), but only when armed via request_flush since they last ran. A
  // hook may schedule same-time events or re-arm itself/others; the batch
  // keeps draining until no same-time work and no armed hooks remain.
  // Components use this to coalesce work across a burst of simultaneous
  // events — e.g. the FlowNetwork settles and rebalances once per
  // timestamp instead of once per flow arrival/completion.
  std::size_t add_flush_hook(std::function<void()> fn);
  // Arms a registered flush hook for the current timestamp.
  void request_flush(std::size_t hook_id);
  // True while a same-timestamp batch is draining.
  bool in_batch() const { return in_batch_; }

  // True if every spawned root process has completed. A false value after
  // run() indicates a model deadlock (processes blocked forever).
  bool all_processes_done() const;
  std::size_t num_processes() const { return roots_.size(); }
  std::uint64_t events_executed() const { return events_executed_; }

  // Telemetry: live pending-event count, the high-water mark it reached,
  // and the wall-clock seconds spent inside run()/run_until() (for the
  // sim-time / wall-time ratio the run manifest reports).
  std::size_t queue_depth() const { return live_events_; }
  std::size_t max_queue_depth() const { return max_queue_depth_; }
  double wall_seconds() const { return wall_seconds_; }
  // Stale (lazily deleted) entries currently parked in the heap, and how
  // many compaction passes have run; exposed for the simulator tests.
  std::size_t stale_entries() const { return stale_entries_; }
  std::uint64_t compactions() const { return compactions_; }
  // Events that joined a same-timestamp batch directly, skipping the two
  // O(log n) heap operations a heap round-trip would have cost.
  std::uint64_t heap_bypasses() const { return heap_bypasses_; }

 private:
  // One pending (or free) slab slot. `gen` advances every time the slot's
  // event fires or is cancelled, invalidating outstanding EventIds and heap
  // entries that reference the old generation.
  struct EventRecord {
    InlineCallback fn;
    std::uint32_t gen = 1;
    std::uint32_t next_free = 0;  // free-list link (1-based; 0 = end)
  };

  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
    // Min-heap on (time, seq): earlier time first, schedule order on ties.
    bool after(const HeapEntry& o) const {
      return time > o.time || (time == o.time && seq > o.seq);
    }
  };

  EventId schedule_impl(SimTime t, InlineCallback fn);
  void exec_entry(const HeapEntry& e);  // fires a live entry's callback
  // Executes every event at the current timestamp (heap entries first —
  // their sequence numbers predate the batch — then the FIFO batch queue),
  // running armed flush hooks at each fixpoint until nothing remains.
  void drain_batch();
  void run_flush_hooks();      // one pass over armed hooks, in order
  void check_root_failures();  // rethrows stored process exceptions
  // Drops stale heap entries in place (and restores the heap property).
  void compact();
  void heap_push(HeapEntry e);
  void heap_pop();
  bool entry_live(const HeapEntry& e) const {
    return records_[e.slot - 1].gen == e.gen;
  }
  [[noreturn]] static void throw_negative_delay();
  [[noreturn]] static void throw_past_time();

  struct FlushHook {
    std::function<void()> fn;
    bool armed = false;
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
  std::size_t live_events_ = 0;
  std::size_t stale_entries_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t heap_bypasses_ = 0;
  double wall_seconds_ = 0.0;
  std::vector<HeapEntry> heap_;       // binary min-heap, storage reused
  std::vector<EventRecord> records_;  // slab, indexed by slot-1
  std::uint32_t free_head_ = 0;       // head of the free-slot list (1-based)
  bool in_batch_ = false;             // a timestamp's events are draining
  bool hooks_armed_ = false;          // at least one flush hook is armed
  std::vector<HeapEntry> batch_;      // FIFO of same-timestamp events
  std::size_t batch_pos_ = 0;         // next batch entry to execute
  std::vector<FlushHook> flush_hooks_;
  std::vector<Task<void>> roots_;
};

}  // namespace stash::sim
