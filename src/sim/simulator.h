// Discrete-event simulator core.
//
// The Simulator owns a time-ordered event queue and the root coroutine
// processes spawned onto it. Model code is written as coroutines that
// `co_await sim.delay(dt)` or await synchronization primitives (sim/sync.h);
// callbacks remain available for low-level components such as the flow
// network's rate recomputation.
//
// Determinism: events at equal timestamps fire in schedule order (a
// monotonically increasing sequence number breaks ties), so a run is a pure
// function of the model and its RNG seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/task.h"

namespace stash::sim {

using SimTime = double;  // seconds since simulation start

// Identifies a scheduled event for cancellation.
struct EventId {
  std::uint64_t seq = 0;
  bool valid() const { return seq != 0; }
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run `delay_s` seconds from now (>= 0).
  EventId schedule(SimTime delay_s, Callback fn);
  // Schedules `fn` at absolute simulated time `t` (>= now()).
  EventId schedule_at(SimTime t, Callback fn);
  // Cancels a scheduled event; no-op if it already fired or was cancelled.
  void cancel(EventId id);

  // Spawns a root process starting at the current simulated time. The
  // Simulator keeps the task alive until it completes (or the Simulator is
  // destroyed, which reclaims unfinished process trees).
  void spawn(Task<void> task);

  // Awaitable that resumes the coroutine after `dt` simulated seconds.
  auto delay(SimTime dt) {
    struct Awaiter {
      Simulator& sim;
      SimTime dt;
      bool await_ready() const noexcept { return dt <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) {
        sim.schedule(dt, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dt};
  }

  // Runs until the event queue is empty. Rethrows the first exception
  // captured by any root process. Returns the final simulated time.
  SimTime run();
  // Runs until the queue is empty or simulated time would exceed `t`.
  SimTime run_until(SimTime t);

  // True if every spawned root process has completed. A false value after
  // run() indicates a model deadlock (processes blocked forever).
  bool all_processes_done() const;
  std::size_t num_processes() const { return roots_.size(); }
  std::uint64_t events_executed() const { return events_executed_; }

  // Telemetry: live pending-event count, the high-water mark it reached,
  // and the wall-clock seconds spent inside run()/run_until() (for the
  // sim-time / wall-time ratio the run manifest reports).
  std::size_t queue_depth() const { return callbacks_.size(); }
  std::size_t max_queue_depth() const { return max_queue_depth_; }
  double wall_seconds() const { return wall_seconds_; }

 private:
  struct Scheduled {
    SimTime time;
    std::uint64_t seq;
    bool operator>(const Scheduled& o) const {
      return time > o.time || (time == o.time && seq > o.seq);
    }
  };

  bool step();                 // executes one event; false if queue empty
  void check_root_failures();  // rethrows stored process exceptions

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t events_executed_ = 0;
  std::size_t max_queue_depth_ = 0;
  double wall_seconds_ = 0.0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, std::greater<>> queue_;
  // seq -> callback; erased on fire/cancel. Cancelled events stay in the
  // priority queue but are skipped when popped.
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::vector<Task<void>> roots_;
};

}  // namespace stash::sim
