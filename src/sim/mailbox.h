// Bounded FIFO channel between simulation coroutines.
//
// Producers `co_await put(item)` and block while the mailbox is full;
// consumers `co_await get()` and block while it is empty. This is the
// backpressure mechanism of the input pipeline: the prefetch queue between
// the data loader and the GPU worker is a Mailbox with capacity equal to
// the prefetch depth.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <optional>
#include <stdexcept>
#include <utility>

#include "sim/simulator.h"

namespace stash::sim {

template <typename T>
class Mailbox {
 public:
  Mailbox(Simulator& sim, std::size_t capacity) : sim_(sim), capacity_(capacity) {
    if (capacity_ == 0) throw std::invalid_argument("Mailbox capacity must be >= 1");
  }
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }

  auto put(T item) {
    struct Awaiter {
      Mailbox& box;
      T item;
      bool await_ready() {
        if (box.items_.size() < box.capacity_ && box.putters_.empty()) {
          box.deposit(std::move(item));
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        box.putters_.push_back(PendingPut{h, std::move(item)});
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, std::move(item)};
  }

  auto get() {
    struct Awaiter {
      Mailbox& box;
      std::optional<T> value{};
      bool await_ready() {
        if (!box.items_.empty()) {
          value.emplace(std::move(box.items_.front()));
          box.items_.pop_front();
          box.admit_putter();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        box.getters_.push_back(PendingGet{h, &value});
      }
      T await_resume() { return std::move(*value); }
    };
    return Awaiter{*this};
  }

 private:
  struct PendingPut {
    std::coroutine_handle<> handle;
    T item;
  };
  struct PendingGet {
    std::coroutine_handle<> handle;
    std::optional<T>* slot;
  };

  // Adds an item, waking a waiting consumer if present.
  void deposit(T item) {
    if (!getters_.empty()) {
      PendingGet g = std::move(getters_.front());
      getters_.pop_front();
      g.slot->emplace(std::move(item));
      sim_.schedule(0.0, [h = g.handle] { h.resume(); });
      return;
    }
    items_.push_back(std::move(item));
  }

  // After a slot frees up, admits the oldest blocked producer.
  void admit_putter() {
    if (putters_.empty() || items_.size() >= capacity_) return;
    PendingPut p = std::move(putters_.front());
    putters_.pop_front();
    deposit(std::move(p.item));
    sim_.schedule(0.0, [h = p.handle] { h.resume(); });
  }

  Simulator& sim_;
  std::size_t capacity_;
  std::deque<T> items_;
  std::deque<PendingPut> putters_;
  std::deque<PendingGet> getters_;
};

}  // namespace stash::sim
