// Lazy coroutine task for simulation processes.
//
// A Task<T> is a coroutine that starts suspended and is resumed either by a
// parent coroutine awaiting it (symmetric transfer hands control back to the
// parent at completion) or by Simulator::spawn for root processes. The Task
// object owns the coroutine frame; destroying the Task destroys the frame,
// so abandoned process trees are reclaimed deterministically.
//
// Exceptions thrown inside a task are captured and rethrown at the point
// where the task is awaited (or from Simulator::run for root tasks), so a
// bug in model code surfaces as a normal C++ exception in the test/bench.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace stash::sim {

template <typename T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;
  bool done = false;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      auto& p = h.promise();
      p.done = true;
      return p.continuation ? p.continuation : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.promise().done; }

  // Starts the task without a continuation (root process). The Simulator is
  // the intended caller; completion is observed via done().
  void start() { handle_.resume(); }

  // Rethrows the task's stored exception, if any.
  void check() const {
    if (handle_ && handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.promise().done; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        handle.promise().continuation = parent;
        return handle;
      }
      T await_resume() {
        if (handle.promise().exception) std::rethrow_exception(handle.promise().exception);
        return std::move(*handle.promise().value);
      }
    };
    return Awaiter{handle_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
  };

  Task() = default;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.promise().done; }
  void start() { handle_.resume(); }
  void check() const {
    if (handle_ && handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.promise().done; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        handle.promise().continuation = parent;
        return handle;
      }
      void await_resume() {
        if (handle.promise().exception) std::rethrow_exception(handle.promise().exception);
      }
    };
    return Awaiter{handle_};
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace stash::sim
