// Synchronization primitives for simulation coroutines.
//
// All primitives resume waiters through the Simulator's event queue (at the
// current simulated time) rather than inline, so triggering code never
// re-enters arbitrary coroutine frames and wake-up order is deterministic
// (FIFO per primitive, sequence-ordered across primitives).
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/simulator.h"
#include "sim/task.h"

namespace stash::sim {

// One-shot event: wait() suspends until trigger(); waits after the trigger
// complete immediately. trigger() is idempotent.
class Event {
 public:
  explicit Event(Simulator& sim) : sim_(sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool triggered() const { return triggered_; }

  void trigger() {
    if (triggered_) return;
    triggered_ = true;
    for (auto h : waiters_) sim_.schedule(0.0, [h] { h.resume(); });
    waiters_.clear();
  }

  auto wait() {
    struct Awaiter {
      Event& ev;
      bool await_ready() const noexcept { return ev.triggered_; }
      void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Simulator& sim_;
  bool triggered_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

// One-shot countdown latch (std::latch analogue).
class Latch {
 public:
  Latch(Simulator& sim, std::size_t count) : event_(sim), count_(count) {
    if (count_ == 0) event_.trigger();
  }

  void count_down() {
    if (count_ == 0) throw std::logic_error("Latch::count_down below zero");
    if (--count_ == 0) event_.trigger();
  }

  auto wait() { return event_.wait(); }
  std::size_t pending() const { return count_; }

 private:
  Event event_;
  std::size_t count_;
};

// Counting semaphore with FIFO waiters. release() hands the permit directly
// to the oldest waiter, so acquisition order equals arrival order.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::size_t initial) : sim_(sim), permits_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  auto acquire() {
    struct Awaiter {
      Semaphore& sem;
      bool await_ready() const noexcept {
        if (sem.permits_ > 0 && sem.waiters_.empty()) {
          --sem.permits_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { sem.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.schedule(0.0, [h] { h.resume(); });
    } else {
      ++permits_;
    }
  }

  std::size_t available() const { return permits_; }
  std::size_t waiting() const { return waiters_.size(); }

 private:
  Simulator& sim_;
  std::size_t permits_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Reusable generation-counted barrier for a fixed participant count
// (synchronous data-parallel workers synchronize on one per iteration).
//
// Arrival tokens: each arriver may pass an opaque token (the trainer passes
// its causal-edge chain tail); after the generation releases, last_token()
// is the token of the *last* arriver — the straggler every other party was
// waiting on. This gives wake-up provenance to observers without the
// callers maintaining shared "who was last" state by hand.
class Barrier {
 public:
  Barrier(Simulator& sim, std::size_t parties) : sim_(sim), parties_(parties) {
    if (parties_ == 0) throw std::invalid_argument("Barrier needs >= 1 party");
  }
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  auto arrive_and_wait(int token = -1) {
    struct Awaiter {
      Barrier& bar;
      int token;
      // Arrivals overwrite in order, so after release the value left behind
      // is the last arriver's.
      bool await_ready() noexcept {
        bar.last_token_ = token;
        return bar.parties_ == 1;
      }
      bool await_suspend(std::coroutine_handle<> h) {
        ++bar.arrived_;
        if (bar.arrived_ == bar.parties_) {
          bar.arrived_ = 0;
          ++bar.generation_;
          for (auto w : bar.waiters_) bar.sim_.schedule(0.0, [w] { w.resume(); });
          bar.waiters_.clear();
          return false;  // last arriver proceeds immediately
        }
        bar.waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, token};
  }

  std::size_t parties() const { return parties_; }
  std::uint64_t generation() const { return generation_; }
  // Token of the latest arrival; after a release, the last arriver's. Valid
  // until the next generation's first arrival overwrites it.
  int last_token() const { return last_token_; }

 private:
  Simulator& sim_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  int last_token_ = -1;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Barrier variant for fault-tolerant synchronization: arrivals can time out
// (the NCCL-watchdog analogue — a crashed participant never arrives, so the
// survivors unblock after `timeout_s` and unwind), and the barrier can be
// aborted explicitly. Once aborted or timed out the barrier is dead: every
// current and future arrival resumes immediately with a non-kOk result, so
// a worker group can tear itself down without deadlocking.
//
// The timeout clock starts when a generation's first participant suspends
// and is cancelled when the generation completes, so healthy iterations pay
// no timeout overhead and schedule no stray events.
class AbortableBarrier {
 public:
  enum class Result { kOk, kAborted, kTimeout };

  // timeout_s == 0 disables the watchdog (waits are unbounded).
  AbortableBarrier(Simulator& sim, std::size_t parties, double timeout_s = 0.0)
      : sim_(sim), parties_(parties), timeout_s_(timeout_s) {
    if (parties_ == 0) throw std::invalid_argument("AbortableBarrier needs >= 1 party");
    if (timeout_s_ < 0.0)
      throw std::invalid_argument("AbortableBarrier timeout must be >= 0");
  }
  AbortableBarrier(const AbortableBarrier&) = delete;
  AbortableBarrier& operator=(const AbortableBarrier&) = delete;

  // Same arrival-token protocol as Barrier: last_token() is the last
  // arriver's token once the generation releases. An aborted or timed-out
  // barrier stops recording (there is no meaningful "straggler" then).
  auto arrive_and_wait(int token = -1) {
    struct Awaiter {
      AbortableBarrier& bar;
      int token;
      Result result = Result::kOk;
      bool await_ready() {
        if (bar.aborted_) {
          result = bar.timed_out_ ? Result::kTimeout : Result::kAborted;
          return true;
        }
        bar.last_token_ = token;
        if (bar.waiters_.size() + 1 == bar.parties_) {
          bar.release_all(Result::kOk);  // last arriver proceeds immediately
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        if (bar.waiters_.empty() && bar.timeout_s_ > 0.0)
          bar.timeout_event_ =
              bar.sim_.schedule(bar.timeout_s_, [&b = bar] { b.on_timeout(); });
        bar.waiters_.push_back(Waiter{h, &result});
      }
      Result await_resume() const noexcept { return result; }
    };
    return Awaiter{*this, token};
  }

  // Kills the barrier: wakes everyone currently waiting with kAborted and
  // makes all future arrivals return kAborted immediately. Idempotent.
  void abort() {
    if (aborted_) return;
    aborted_ = true;
    release_all(Result::kAborted);
  }

  bool aborted() const { return aborted_; }
  bool timed_out() const { return timed_out_; }
  std::size_t parties() const { return parties_; }
  std::uint64_t generation() const { return generation_; }
  int last_token() const { return last_token_; }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    Result* slot;  // points into the suspended awaiter frame
  };

  void release_all(Result r) {
    if (timeout_event_.valid()) {
      sim_.cancel(timeout_event_);
      timeout_event_ = EventId{};
    }
    ++generation_;
    for (Waiter& w : waiters_) {
      *w.slot = r;
      sim_.schedule(0.0, [h = w.handle] { h.resume(); });
    }
    waiters_.clear();
  }

  void on_timeout() {
    timeout_event_ = EventId{};
    timed_out_ = true;
    aborted_ = true;
    release_all(Result::kTimeout);
  }

  Simulator& sim_;
  std::size_t parties_;
  double timeout_s_;
  bool aborted_ = false;
  bool timed_out_ = false;
  std::uint64_t generation_ = 0;
  int last_token_ = -1;
  std::vector<Waiter> waiters_;
  EventId timeout_event_{};
};

// Runs all tasks concurrently as root processes and completes when every
// one of them has finished.
inline Task<void> join_all(Simulator& sim, std::vector<Task<void>> tasks) {
  auto latch = std::make_shared<Latch>(sim, tasks.size());
  for (auto& t : tasks) {
    // Wrap each task so that its completion counts down the shared latch.
    auto wrapper = [](Task<void> inner, std::shared_ptr<Latch> l) -> Task<void> {
      co_await std::move(inner);
      l->count_down();
    };
    sim.spawn(wrapper(std::move(t), latch));
  }
  co_await latch->wait();
}

}  // namespace stash::sim
