#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace stash::sim {

namespace {
// Compaction is only worthwhile once the heap carries a meaningful number
// of corpses; below this floor the scan costs more than it saves.
constexpr std::size_t kCompactionFloor = 64;
}  // namespace

Simulator::Simulator() {
  // Steady-state models schedule from a warm pool: pre-reserve so the first
  // iterations of a run do not pay vector growth in the event hot path.
  heap_.reserve(256);
  records_.reserve(256);
}

void Simulator::throw_negative_delay() {
  throw std::invalid_argument("Simulator::schedule: negative delay");
}

void Simulator::throw_past_time() {
  throw std::invalid_argument("Simulator::schedule_at: time in the past");
}

void Simulator::heap_push(HeapEntry e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const HeapEntry& a, const HeapEntry& b) { return a.after(b); });
}

void Simulator::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(),
                [](const HeapEntry& a, const HeapEntry& b) { return a.after(b); });
  heap_.pop_back();
}

EventId Simulator::schedule_impl(SimTime t, InlineCallback fn) {
  std::uint32_t slot;
  if (free_head_ != 0) {
    slot = free_head_;
    EventRecord& rec = records_[slot - 1];
    free_head_ = rec.next_free;
    rec.fn = std::move(fn);
  } else {
    records_.push_back(EventRecord{std::move(fn), 1, 0});
    slot = static_cast<std::uint32_t>(records_.size());
  }
  std::uint32_t gen = records_[slot - 1].gen;
  if (in_batch_ && t == now_) {
    // Scheduled at the timestamp currently draining: join the FIFO batch
    // instead of round-tripping through the heap. Sequence numbers stay
    // monotonic, so batch order == schedule order, and every entry already
    // in the heap at this time precedes every batch entry.
    batch_.push_back(HeapEntry{t, next_seq_++, slot, gen});
    ++heap_bypasses_;
  } else {
    heap_push(HeapEntry{t, next_seq_++, slot, gen});
  }
  ++live_events_;
  max_queue_depth_ = std::max(max_queue_depth_, live_events_);
  return EventId{slot, gen};
}

void Simulator::cancel(EventId id) {
  if (!id.valid() || id.slot > records_.size()) return;
  EventRecord& rec = records_[id.slot - 1];
  if (rec.gen != id.gen) return;  // already fired, cancelled, or slot reused
  rec.fn.reset();
  ++rec.gen;
  rec.next_free = free_head_;
  free_head_ = id.slot;
  --live_events_;
  // The heap entry is now a lazily deleted corpse; compact once corpses
  // outnumber live events so pathological cancel patterns (timeout guards
  // that almost never fire) cannot grow the heap unboundedly.
  ++stale_entries_;
  if (stale_entries_ > live_events_ && stale_entries_ >= kCompactionFloor)
    compact();
}

void Simulator::compact() {
  auto stale = [this](const HeapEntry& e) { return !entry_live(e); };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), stale), heap_.end());
  std::make_heap(heap_.begin(), heap_.end(),
                 [](const HeapEntry& a, const HeapEntry& b) { return a.after(b); });
  stale_entries_ = 0;
  ++compactions_;
}

void Simulator::spawn(Task<void> task) {
  if (!task.valid()) throw std::invalid_argument("Simulator::spawn: invalid task");
  roots_.push_back(std::move(task));
  // Start at the current simulated time, synchronously: a process may run
  // up to its first suspension point before spawn returns, matching the
  // "process begins now" semantics.
  roots_.back().start();
}

void Simulator::exec_entry(const HeapEntry& e) {
  EventRecord& rec = records_[e.slot - 1];
  InlineCallback fn = std::move(rec.fn);
  rec.fn.reset();
  ++rec.gen;
  rec.next_free = free_head_;
  free_head_ = e.slot;
  --live_events_;
  ++events_executed_;
  fn();
}

std::size_t Simulator::add_flush_hook(std::function<void()> fn) {
  flush_hooks_.push_back(FlushHook{std::move(fn), false});
  return flush_hooks_.size() - 1;
}

void Simulator::request_flush(std::size_t hook_id) {
  flush_hooks_[hook_id].armed = true;
  hooks_armed_ = true;
}

void Simulator::run_flush_hooks() {
  // Clear the summary flag first: a hook that re-arms (or arms an earlier
  // hook) raises it again and the caller loops for another pass.
  hooks_armed_ = false;
  for (std::size_t i = 0; i < flush_hooks_.size(); ++i) {
    if (!flush_hooks_[i].armed) continue;
    flush_hooks_[i].armed = false;
    flush_hooks_[i].fn();
  }
}

void Simulator::drain_batch() {
  const SimTime t = now_;
  for (;;) {
    // Heap entries at time t were all scheduled before this batch began
    // (same-time schedules divert to the batch while it drains), so their
    // sequence numbers precede every batch entry's: execute them first.
    while (!heap_.empty() && !entry_live(heap_.front())) {
      if (stale_entries_ > 0) --stale_entries_;
      heap_pop();
    }
    if (!heap_.empty() && heap_.front().time == t) {
      HeapEntry e = heap_.front();
      heap_pop();
      exec_entry(e);
      continue;
    }
    if (batch_pos_ < batch_.size()) {
      HeapEntry e = batch_[batch_pos_++];
      if (!entry_live(e)) {  // cancelled while queued in the batch
        if (stale_entries_ > 0) --stale_entries_;
        continue;
      }
      exec_entry(e);
      continue;
    }
    if (hooks_armed_) {
      // Batch fixpoint: every same-time event has fired. Hooks may
      // schedule more same-time work or re-arm, so keep draining.
      run_flush_hooks();
      continue;
    }
    break;
  }
  batch_.clear();
  batch_pos_ = 0;
  in_batch_ = false;
}

void Simulator::check_root_failures() {
  for (const auto& t : roots_) t.check();
}

SimTime Simulator::run() {
  auto wall_start = std::chrono::steady_clock::now();
  for (;;) {
    // Hooks armed outside a batch (e.g. a transfer started before run())
    // must flush at the timestamp that armed them, before time advances.
    if (hooks_armed_) {
      run_flush_hooks();
      continue;
    }
    while (!heap_.empty() && !entry_live(heap_.front())) {
      if (stale_entries_ > 0) --stale_entries_;
      heap_pop();
    }
    if (heap_.empty()) break;
    now_ = heap_.front().time;
    in_batch_ = true;
    drain_batch();
  }
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  check_root_failures();
  return now_;
}

SimTime Simulator::run_until(SimTime t) {
  auto wall_start = std::chrono::steady_clock::now();
  for (;;) {
    if (hooks_armed_) {
      run_flush_hooks();
      continue;
    }
    while (!heap_.empty() && !entry_live(heap_.front())) {
      if (stale_entries_ > 0) --stale_entries_;
      heap_pop();
    }
    if (heap_.empty() || heap_.front().time > t) break;
    now_ = heap_.front().time;
    in_batch_ = true;
    drain_batch();
  }
  // Advance the clock to the requested horizon even if nothing fires there.
  now_ = std::max(now_, t);
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  check_root_failures();
  return now_;
}

bool Simulator::all_processes_done() const {
  for (const auto& t : roots_)
    if (!t.done()) return false;
  return true;
}

}  // namespace stash::sim
