#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace stash::sim {

namespace {
// Compaction is only worthwhile once the heap carries a meaningful number
// of corpses; below this floor the scan costs more than it saves.
constexpr std::size_t kCompactionFloor = 64;
}  // namespace

Simulator::Simulator() {
  // Steady-state models schedule from a warm pool: pre-reserve so the first
  // iterations of a run do not pay vector growth in the event hot path.
  heap_.reserve(256);
  records_.reserve(256);
}

void Simulator::throw_negative_delay() {
  throw std::invalid_argument("Simulator::schedule: negative delay");
}

void Simulator::throw_past_time() {
  throw std::invalid_argument("Simulator::schedule_at: time in the past");
}

void Simulator::heap_push(HeapEntry e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const HeapEntry& a, const HeapEntry& b) { return a.after(b); });
}

void Simulator::heap_pop() {
  std::pop_heap(heap_.begin(), heap_.end(),
                [](const HeapEntry& a, const HeapEntry& b) { return a.after(b); });
  heap_.pop_back();
}

EventId Simulator::schedule_impl(SimTime t, InlineCallback fn) {
  std::uint32_t slot;
  if (free_head_ != 0) {
    slot = free_head_;
    EventRecord& rec = records_[slot - 1];
    free_head_ = rec.next_free;
    rec.fn = std::move(fn);
  } else {
    records_.push_back(EventRecord{std::move(fn), 1, 0});
    slot = static_cast<std::uint32_t>(records_.size());
  }
  std::uint32_t gen = records_[slot - 1].gen;
  heap_push(HeapEntry{t, next_seq_++, slot, gen});
  ++live_events_;
  max_queue_depth_ = std::max(max_queue_depth_, live_events_);
  return EventId{slot, gen};
}

void Simulator::cancel(EventId id) {
  if (!id.valid() || id.slot > records_.size()) return;
  EventRecord& rec = records_[id.slot - 1];
  if (rec.gen != id.gen) return;  // already fired, cancelled, or slot reused
  rec.fn.reset();
  ++rec.gen;
  rec.next_free = free_head_;
  free_head_ = id.slot;
  --live_events_;
  // The heap entry is now a lazily deleted corpse; compact once corpses
  // outnumber live events so pathological cancel patterns (timeout guards
  // that almost never fire) cannot grow the heap unboundedly.
  ++stale_entries_;
  if (stale_entries_ > live_events_ && stale_entries_ >= kCompactionFloor)
    compact();
}

void Simulator::compact() {
  auto stale = [this](const HeapEntry& e) { return !entry_live(e); };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), stale), heap_.end());
  std::make_heap(heap_.begin(), heap_.end(),
                 [](const HeapEntry& a, const HeapEntry& b) { return a.after(b); });
  stale_entries_ = 0;
  ++compactions_;
}

void Simulator::spawn(Task<void> task) {
  if (!task.valid()) throw std::invalid_argument("Simulator::spawn: invalid task");
  roots_.push_back(std::move(task));
  // Start at the current simulated time, synchronously: a process may run
  // up to its first suspension point before spawn returns, matching the
  // "process begins now" semantics.
  roots_.back().start();
}

bool Simulator::step() {
  while (!heap_.empty()) {
    HeapEntry top = heap_.front();
    heap_pop();
    EventRecord& rec = records_[top.slot - 1];
    if (rec.gen != top.gen) {  // cancelled: lazily deleted corpse
      if (stale_entries_ > 0) --stale_entries_;
      continue;
    }
    now_ = top.time;
    InlineCallback fn = std::move(rec.fn);
    rec.fn.reset();
    ++rec.gen;
    rec.next_free = free_head_;
    free_head_ = top.slot;
    --live_events_;
    ++events_executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::check_root_failures() {
  for (const auto& t : roots_) t.check();
}

SimTime Simulator::run() {
  auto wall_start = std::chrono::steady_clock::now();
  while (step()) {
  }
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  check_root_failures();
  return now_;
}

SimTime Simulator::run_until(SimTime t) {
  auto wall_start = std::chrono::steady_clock::now();
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (!entry_live(top)) {
      if (stale_entries_ > 0) --stale_entries_;
      heap_pop();
      continue;
    }
    if (top.time > t) break;
    step();
  }
  // Advance the clock to the requested horizon even if nothing fires there.
  now_ = std::max(now_, t);
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  check_root_failures();
  return now_;
}

bool Simulator::all_processes_done() const {
  for (const auto& t : roots_)
    if (!t.done()) return false;
  return true;
}

}  // namespace stash::sim
