#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace stash::sim {

EventId Simulator::schedule(SimTime delay_s, Callback fn) {
  if (delay_s < 0.0) throw std::invalid_argument("Simulator::schedule: negative delay");
  return schedule_at(now_ + delay_s, std::move(fn));
}

EventId Simulator::schedule_at(SimTime t, Callback fn) {
  if (t < now_) throw std::invalid_argument("Simulator::schedule_at: time in the past");
  std::uint64_t seq = next_seq_++;
  queue_.push(Scheduled{t, seq});
  callbacks_.emplace(seq, std::move(fn));
  max_queue_depth_ = std::max(max_queue_depth_, callbacks_.size());
  return EventId{seq};
}

void Simulator::cancel(EventId id) {
  if (id.valid()) callbacks_.erase(id.seq);
}

void Simulator::spawn(Task<void> task) {
  if (!task.valid()) throw std::invalid_argument("Simulator::spawn: invalid task");
  roots_.push_back(std::move(task));
  // Start at the current simulated time, synchronously: a process may run
  // up to its first suspension point before spawn returns, matching the
  // "process begins now" semantics.
  roots_.back().start();
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Scheduled top = queue_.top();
    auto it = callbacks_.find(top.seq);
    if (it == callbacks_.end()) {
      queue_.pop();  // cancelled
      continue;
    }
    queue_.pop();
    now_ = top.time;
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    ++events_executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::check_root_failures() {
  for (const auto& t : roots_) t.check();
}

SimTime Simulator::run() {
  auto wall_start = std::chrono::steady_clock::now();
  while (step()) {
  }
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  check_root_failures();
  return now_;
}

SimTime Simulator::run_until(SimTime t) {
  auto wall_start = std::chrono::steady_clock::now();
  while (!queue_.empty()) {
    Scheduled top = queue_.top();
    if (!callbacks_.contains(top.seq)) {
      queue_.pop();
      continue;
    }
    if (top.time > t) break;
    step();
  }
  // Advance the clock to the requested horizon even if nothing fires there.
  now_ = std::max(now_, t);
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  check_root_failures();
  return now_;
}

bool Simulator::all_processes_done() const {
  for (const auto& t : roots_)
    if (!t.done()) return false;
  return true;
}

}  // namespace stash::sim
