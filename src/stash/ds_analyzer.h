// DS-Analyzer baseline (Mohan et al.), the prior work Stash extends.
//
// DS-Analyzer runs only steps 2-4: it measures CPU (prep) and disk (fetch)
// stalls but has "a key omission of not profiling communication-related
// stalls" (paper §I). Running both profilers on the same workload shows
// exactly what the omission costs — on communication-bound configurations
// DS-Analyzer attributes almost none of the slowdown.
#pragma once

#include "stash/profiler.h"

namespace stash::profiler {

struct DsAnalyzerReport {
  std::string config_label;
  std::string model_name;
  int per_gpu_batch = 0;

  double t2 = 0.0, t3 = 0.0, t4 = 0.0;
  double prep_stall_pct = 0.0;
  double fetch_stall_pct = 0.0;

  // Share of the real-data iteration DS-Analyzer cannot attribute to any
  // stall because it never measures communication: (t2 - ideal_compute)/t4.
  double unattributed_pct = 0.0;
};

class DsAnalyzer {
 public:
  DsAnalyzer(dnn::Model model, dnn::Dataset dataset, ProfileOptions options = {});

  DsAnalyzerReport profile(const ClusterSpec& spec, int per_gpu_batch) const;

 private:
  StashProfiler inner_;  // reuses the same step runner
};

}  // namespace stash::profiler
