#include "stash/profiler.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>
#include <optional>
#include <stdexcept>
#include <utility>

#include "cloud/builder.h"
#include "faults/injector.h"
#include "hw/flow_network.h"
#include "sim/simulator.h"
#include "util/log.h"

namespace stash::profiler {

std::optional<ClusterSpec> network_split(const ClusterSpec& spec) {
  if (spec.count != 1) return std::nullopt;
  int total = spec.gpus_used();
  if (total < 2) return std::nullopt;
  int per_machine = total / 2;
  if (per_machine * 2 != total) return std::nullopt;  // odd counts don't split

  // Smallest same-family catalog instance that can host half the GPUs.
  const auto& base = cloud::instance(spec.instance);
  const cloud::InstanceType* best = nullptr;
  for (const auto& cand : cloud::instance_catalog()) {
    if (cand.family != base.family || cand.num_gpus < per_machine) continue;
    if (cand.dedicated && !base.dedicated) continue;
    if (best == nullptr || cand.num_gpus < best->num_gpus ||
        (cand.num_gpus == best->num_gpus &&
         cand.price_per_hour < best->price_per_hour))
      best = &cand;
  }
  if (best == nullptr) return std::nullopt;

  ClusterSpec split;
  split.instance = best->name;
  split.count = 2;
  split.gpus_per_machine = per_machine == best->num_gpus ? -1 : per_machine;
  split.slice = spec.slice;
  return split;
}

void ProfileOptions::validate() const {
  if (iterations < 1)
    throw std::invalid_argument("ProfileOptions: iterations must be >= 1");
  if (warmup_iterations < 0)
    throw std::invalid_argument("ProfileOptions: warmup_iterations must be >= 0");
  if (warmup_iterations >= iterations)
    throw std::invalid_argument(
        "ProfileOptions: warmup_iterations must be < iterations (no measured "
        "iterations would remain)");
  if (loader_workers_per_gpu < 1)
    throw std::invalid_argument("ProfileOptions: loader_workers_per_gpu must be >= 1");
  if (prefetch_depth < 1)
    throw std::invalid_argument("ProfileOptions: prefetch_depth must be >= 1");
  if (!std::isfinite(bucket_bytes))
    throw std::invalid_argument("ProfileOptions: bucket_bytes must be finite");
}

StashProfiler::StashProfiler(dnn::Model model, dnn::Dataset dataset,
                             ProfileOptions options)
    : model_(std::move(model)), dataset_(std::move(dataset)), options_(options) {
  options_.validate();
}

ddl::TrainConfig StashProfiler::step_config(Step step, int per_gpu_batch,
                                            int gpus_in_spec) const {
  ddl::TrainConfig cfg;
  cfg.per_gpu_batch = per_gpu_batch;
  cfg.iterations = options_.iterations;
  cfg.warmup_iterations = options_.warmup_iterations;
  cfg.bucket_bytes = options_.bucket_bytes;
  cfg.collective = options_.collective;
  cfg.loader_workers_per_gpu = options_.loader_workers_per_gpu;
  cfg.prefetch_depth = options_.prefetch_depth;
  switch (step) {
    case Step::kSingleGpuSynthetic:
      cfg.synthetic_data = true;
      cfg.use_gpus = {hw::GpuRef{0, 0}};
      break;
    case Step::kAllGpuSynthetic:
    case Step::kNetworkSynthetic:
      cfg.synthetic_data = true;
      break;
    case Step::kRealCold:
      cfg.synthetic_data = false;
      cfg.cold_cache = true;
      break;
    case Step::kRealWarm:
      cfg.synthetic_data = false;
      cfg.cold_cache = false;
      break;
  }
  (void)gpus_in_spec;
  return cfg;
}

ddl::TrainResult StashProfiler::run_step(const ClusterSpec& spec, Step step,
                                         int per_gpu_batch,
                                         const faults::FaultPlan* plan,
                                         const FaultProfileOptions& fopt) const {
  bool instrumented = step == options_.instrument_step;
  return run_step_sinked(spec, step, per_gpu_batch, plan, fopt,
                         instrumented ? options_.trace : nullptr,
                         instrumented ? options_.metrics : nullptr,
                         instrumented ? options_.causal : nullptr);
}

ddl::TrainResult StashProfiler::run_step_sinked(
    const ClusterSpec& spec, Step step, int per_gpu_batch,
    const faults::FaultPlan* plan, const FaultProfileOptions& fopt,
    util::TraceRecorder* trace, telemetry::MetricsRegistry* metrics,
    obs::CausalLog* causal) const {
  options_.validate();

  // Cacheable scenarios (no sinks, no fault plan) are memoized in the
  // execution context's SimCache: the run is a pure function of its key,
  // so recompute is pure waste. Everything else runs fresh every time —
  // a causal-instrumented run in particular exists for its side effects.
  if (options_.exec != nullptr && plan == nullptr && trace == nullptr &&
      metrics == nullptr && causal == nullptr) {
    ddl::TrainConfig key_cfg = step_config(step, per_gpu_batch, spec.gpus_used());
    if (exec::cacheable(key_cfg)) {
      exec::ScenarioKey key = exec::scenario_key(model_, dataset_, spec,
                                                 static_cast<int>(step), key_cfg);
      return options_.exec->cache().get_or_run(key, [&] {
        return run_step_uncached(spec, step, per_gpu_batch, nullptr, fopt, nullptr,
                                 nullptr, nullptr);
      });
    }
  }
  return run_step_uncached(spec, step, per_gpu_batch, plan, fopt, trace, metrics,
                           causal);
}

ddl::TrainResult StashProfiler::run_step_uncached(
    const ClusterSpec& spec, Step step, int per_gpu_batch,
    const faults::FaultPlan* plan, const FaultProfileOptions& fopt,
    util::TraceRecorder* trace, telemetry::MetricsRegistry* metrics,
    obs::CausalLog* causal) const {
  sim::Simulator sim;
  hw::FlowNetwork net(sim);
  hw::Cluster cluster(
      net, sim,
      cloud::cluster_configs_for(cloud::instance(spec.instance), spec.count,
                                 spec.slice),
      cloud::fabric_bandwidth());

  ddl::TrainConfig cfg = step_config(step, per_gpu_batch, spec.gpus_used());
  cfg.trace = trace;
  cfg.metrics = metrics;
  cfg.causal = causal;
  // Restrict to the spec's per-machine GPU subset (step-5 splits and step 1).
  if (cfg.use_gpus.empty() && spec.gpus_per_machine > 0) {
    for (int m = 0; m < spec.count; ++m) {
      const auto& order = cluster.machine(m).ring_order();
      for (int g = 0; g < spec.gpus_per_machine; ++g)
        cfg.use_gpus.push_back(hw::GpuRef{m, order[static_cast<std::size_t>(g)]});
    }
  }

  // Inject the plan, if any: capacity faults through the event queue, crash
  // and straggler state through the trainer's fault-tolerance hooks. Events
  // aimed at machines this step does not build (e.g. a machine-1 crash on
  // the single-machine steps) fall away harmlessly.
  std::optional<faults::FaultInjector> injector;
  if (plan != nullptr) {
    injector.emplace(sim, net, cluster, *plan);
    injector->arm();
    cfg.fault_tolerance = fopt.tolerance(&injector->state());
  }

  ddl::Trainer trainer(sim, net, cluster, model_, dataset_, cfg);
  return trainer.run();
}

StallReport StashProfiler::profile_impl(const ClusterSpec& spec, int per_gpu_batch,
                                        const faults::FaultPlan* plan,
                                        const FaultProfileOptions& fopt,
                                        ddl::TrainResult* warm_out) const {
  StallReport report;
  report.config_label = spec.label();
  report.model_name = model_.name();
  report.per_gpu_batch = per_gpu_batch;
  report.gpus = spec.gpus_used();

  std::optional<ClusterSpec> split = network_split(spec);
  report.t5 = std::nan("");

  // The five steps are independent simulations: dispatch them across the
  // execution context's pool (serial without one). Each instrumented step
  // records into a private registry; after the join the registries are
  // merged in fixed step order — never completion order — so the metrics
  // snapshot is byte-identical for any --jobs value. Failures are also
  // deterministic: parallel_for rethrows the lowest-index step's exception,
  // the one a serial loop would have hit first.
  std::array<telemetry::MetricsRegistry, 5> step_metrics;
  auto trace_for = [&](Step s) {
    return s == options_.instrument_step ? options_.trace : nullptr;
  };
  auto metrics_for = [&](Step s, std::size_t i) {
    return options_.metrics != nullptr && s == options_.instrument_step
               ? &step_metrics[i]
               : nullptr;
  };
  auto causal_for = [&](Step s) {
    return s == options_.instrument_step ? options_.causal : nullptr;
  };
  obs::ProgressReporter* progress = options_.progress;
  if (progress != nullptr) progress->begin("profile " + report.config_label, 5);
  util::log_info("profiler: start ", model_.name(), " on ",
                 report.config_label, " batch ", per_gpu_batch);
  auto tick = [&](const char* what) {
    if (progress != nullptr) progress->step(what);
    util::log_debug("profiler: ", what, " [", report.config_label, "]");
  };
  ddl::TrainResult warm;
  std::array<std::function<void()>, 5> steps = {
      [&] {
        report.t1 = run_step_sinked(spec, Step::kSingleGpuSynthetic, per_gpu_batch,
                                    plan, fopt, trace_for(Step::kSingleGpuSynthetic),
                                    metrics_for(Step::kSingleGpuSynthetic, 0),
                                    causal_for(Step::kSingleGpuSynthetic))
                        .per_iteration;
        tick("T1 single-GPU synthetic");
      },
      [&] {
        report.t2 = run_step_sinked(spec, Step::kAllGpuSynthetic, per_gpu_batch,
                                    plan, fopt, trace_for(Step::kAllGpuSynthetic),
                                    metrics_for(Step::kAllGpuSynthetic, 1),
                                    causal_for(Step::kAllGpuSynthetic))
                        .per_iteration;
        tick("T2 all-GPU synthetic");
      },
      [&] {
        report.t3 = run_step_sinked(spec, Step::kRealCold, per_gpu_batch, plan,
                                    fopt, trace_for(Step::kRealCold),
                                    metrics_for(Step::kRealCold, 2),
                                    causal_for(Step::kRealCold))
                        .per_iteration;
        tick("T3 real cold-cache");
      },
      [&] {
        warm = run_step_sinked(spec, Step::kRealWarm, per_gpu_batch, plan, fopt,
                               trace_for(Step::kRealWarm),
                               metrics_for(Step::kRealWarm, 3),
                               causal_for(Step::kRealWarm));
        report.t4 = warm.per_iteration;
        tick("T4 real warm-cache");
      },
      [&] {
        if (!split) {
          tick("T5 skipped (no network split)");
          return;
        }
        try {
          report.t5 = run_step_sinked(*split, Step::kNetworkSynthetic,
                                      per_gpu_batch, plan, fopt,
                                      trace_for(Step::kNetworkSynthetic),
                                      metrics_for(Step::kNetworkSynthetic, 4),
                                      causal_for(Step::kNetworkSynthetic))
                          .per_iteration;
          report.has_network_step = true;
          tick("T5 two-machine synthetic");
        } catch (const ddl::ModelDoesNotFit&) {
          // The split instances can have smaller GPUs than the original (e.g.
          // p3.24xlarge's 32 GiB V100s split onto 16 GiB p3.8xlarge ones); the
          // network step is then unmeasurable at this batch size.
          tick("T5 skipped (model does not fit split)");
        }
      },
  };
  exec::ThreadPool* pool =
      options_.exec != nullptr ? options_.exec->pool() : nullptr;
  exec::parallel_for(pool, steps.size(), [&](std::size_t i) { steps[i](); });
  if (progress != nullptr) progress->done();
  if (options_.metrics != nullptr)
    for (const auto& m : step_metrics) options_.metrics->merge_from(m);

  // A stall percentage with a ~zero or non-finite denominator (a step whose
  // measured window collapsed) is meaningless: clamp it to 0 and flag the
  // report instead of letting -nan% reach a table.
  auto pct = [&report](double num, double den) {
    double v = num / den;
    if (!(den > 1e-12) || !std::isfinite(v)) {
      report.degenerate_pcts = true;
      return 0.0;
    }
    return std::max(0.0, v * 100.0);
  };
  report.ic_stall_pct = pct(report.t2 - report.t1, report.t1);
  report.nw_stall_pct =
      report.has_network_step ? pct(report.t5 - report.t2, report.t2) : 0.0;
  report.prep_stall_pct = pct(report.t4 - report.t2, report.t4);
  report.fetch_stall_pct = pct(report.t3 - report.t4, report.t3);

  // Fault share of the warm run's total wall time (measured window + fault
  // losses) — the fifth stall category.
  if (warm.fault_stall > 0.0)
    report.fault_stall_pct =
        pct(warm.fault_stall, warm.window_time + warm.fault_stall);

  report.epoch_seconds = warm.epoch_time(dataset_.num_samples, per_gpu_batch);
  report.epoch_cost_usd = cloud::cost_usd(cloud::instance(spec.instance),
                                          report.epoch_seconds, spec.count);

  // Mirror the derived decomposition into the registry so a metrics file is
  // self-contained: the stall percentages there match the report (and the
  // manifest) exactly.
  if (options_.metrics != nullptr) {
    auto& m = *options_.metrics;
    m.gauge("profiler/t1_s").set(report.t1);
    m.gauge("profiler/t2_s").set(report.t2);
    m.gauge("profiler/t3_s").set(report.t3);
    m.gauge("profiler/t4_s").set(report.t4);
    if (report.has_network_step) m.gauge("profiler/t5_s").set(report.t5);
    m.gauge("profiler/ic_stall_pct").set(report.ic_stall_pct);
    m.gauge("profiler/nw_stall_pct").set(report.nw_stall_pct);
    m.gauge("profiler/prep_stall_pct").set(report.prep_stall_pct);
    m.gauge("profiler/fetch_stall_pct").set(report.fetch_stall_pct);
    m.gauge("profiler/fault_stall_pct").set(report.fault_stall_pct);
  }

  if (warm_out != nullptr) *warm_out = std::move(warm);
  return report;
}

StallReport StashProfiler::profile(const ClusterSpec& spec, int per_gpu_batch) const {
  return profile_impl(spec, per_gpu_batch, nullptr, {}, nullptr);
}

FaultProfileReport StashProfiler::profile_under_faults(
    const ClusterSpec& spec, int per_gpu_batch, const faults::FaultPlan& plan,
    const FaultProfileOptions& fopt) const {
  plan.validate();
  FaultProfileReport out;
  // Instrument only the faulted pass: with one shared registry/trace, running
  // both passes instrumented would overlay two runs' counters and spans.
  {
    ProfileOptions healthy_opts = options_;
    healthy_opts.trace = nullptr;
    healthy_opts.metrics = nullptr;
    healthy_opts.causal = nullptr;
    StashProfiler healthy_profiler(model_, dataset_, healthy_opts);
    out.healthy = healthy_profiler.profile_impl(spec, per_gpu_batch, nullptr, {}, nullptr);
  }
  ddl::TrainResult warm;
  out.faulted = profile_impl(spec, per_gpu_batch, &plan, fopt, &warm);
  out.fault_stall_seconds = warm.fault_stall;
  out.checkpoint_seconds = warm.checkpoint_seconds;
  out.checkpoints_written = warm.checkpoints_written;
  out.gpus_at_end = warm.gpus_at_end;
  out.recoveries = warm.recoveries;
  out.epoch_slowdown = out.healthy.epoch_seconds > 0.0
                           ? out.faulted.epoch_seconds / out.healthy.epoch_seconds
                           : 1.0;
  return out;
}

}  // namespace stash::profiler
