#include "stash/spot_replay.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/log.h"
#include "util/rng.h"

namespace stash::profiler {

SpotReplayResult replay_spot_run(const StashProfiler& prof, const ClusterSpec& spec,
                                 int per_gpu_batch, double work_seconds,
                                 const cloud::SpotConfig& config,
                                 std::uint64_t seed,
                                 double watchdog_timeout_s) {
  if (work_seconds < 0.0)
    throw std::invalid_argument("replay_spot_run: negative work_seconds");
  if (watchdog_timeout_s < 0.0 || !std::isfinite(watchdog_timeout_s))
    throw std::invalid_argument(
        "replay_spot_run: watchdog_timeout_s must be finite and >= 0 "
        "(0 = automatic)");
  config.validate();

  SpotReplayResult out;

  // 1. Healthy warm-data run: the true iteration time on this spec.
  ddl::TrainResult healthy = prof.run_step(spec, Step::kRealWarm, per_gpu_batch);
  ++out.trainer_runs;
  out.healthy_iteration_s = healthy.per_iteration;

  // 2. Calibration: revoke machine 0 mid-window and let the trainer recover
  // via checkpoint-restart. The recovery record's wait is the measured
  // fixed cost of one revocation: the partial iteration thrown away, the
  // watchdog detection gap, and the reprovision wait.
  const double iter_s = std::max(healthy.per_iteration, 1e-9);
  FaultProfileOptions fopt;
  fopt.policy = ddl::RecoveryPolicy::kCheckpointRestart;
  fopt.barrier_timeout_s = watchdog_timeout_s > 0.0
                               ? watchdog_timeout_s
                               : std::max(2.0 * iter_s, 1e-6);
  fopt.checkpoint_interval_s = config.checkpoint_interval_s;
  fopt.checkpoint_write_s = config.checkpoint_write_s;

  faults::FaultPlan plan;
  {
    faults::FaultEvent crash;
    crash.kind = faults::FaultKind::kCrash;
    // Land between two mid-window iterations so both warmup and the tail
    // survive; the exact phase does not matter for the fixed cost.
    crash.start_s = iter_s * 2.5;
    crash.machine = 0;
    crash.reprovision_s = config.restart_overhead_s;
    plan.events.push_back(crash);
  }
  ddl::TrainResult faulted =
      prof.run_step(spec, Step::kRealWarm, per_gpu_batch, &plan, fopt);
  ++out.trainer_runs;
  if (!faulted.recoveries.empty())
    out.recovery_fixed_cost_s = faulted.recoveries.front().wait_seconds;
  else  // crash missed the window (degenerate spec); assume watchdog + restart
    out.recovery_fixed_cost_s = fopt.barrier_timeout_s + config.restart_overhead_s;

  // 3. Poisson interruption process over the job, using measured constants.
  util::Rng rng(seed);
  cloud::SpotOutcome o;
  double remaining = work_seconds;
  double since_checkpoint = 0.0;
  // Same fleet-below-k guard as cloud::simulate_spot_run: when consecutive
  // revocations retain no net work, degrade to the on-demand floor instead
  // of looping forever.
  constexpr int kMaxBarrenInterruptions = 8;
  int barren = 0;
  double remaining_at_last_revocation = std::numeric_limits<double>::infinity();
  while (remaining > 0.0) {
    double next_interruption =
        config.interruptions_per_hour > 0.0
            ? rng.exponential(3600.0 / config.interruptions_per_hour)
            : std::numeric_limits<double>::infinity();
    double until_checkpoint = config.checkpoint_interval_s - since_checkpoint;
    double step = std::min({remaining, next_interruption, until_checkpoint});

    o.wall_seconds += step;
    remaining -= step;
    since_checkpoint += step;
    if (remaining <= 0.0) break;

    if (step == next_interruption) {
      ++o.interruptions;
      // Rework replays at the measured training speed: the work since the
      // last checkpoint is lost and re-run, plus the measured fixed cost.
      o.lost_work_seconds += since_checkpoint;
      remaining += since_checkpoint;
      o.wall_seconds += out.recovery_fixed_cost_s;
      since_checkpoint = 0.0;
      barren = remaining >= remaining_at_last_revocation ? barren + 1 : 0;
      remaining_at_last_revocation = remaining;
      if (barren >= kMaxBarrenInterruptions) {
        util::log_warn("replay_spot_run: ", barren,
                       " consecutive revocations without net progress; "
                       "degrading to the on-demand floor for the remaining ",
                       remaining, " s of work");
        o.degraded_to_floor = true;
        o.floor_wall_seconds = remaining;
        o.wall_seconds += remaining;
        remaining = 0.0;
      }
    } else if (since_checkpoint >= config.checkpoint_interval_s) {
      o.wall_seconds += config.checkpoint_write_s;
      o.lost_work_seconds += config.checkpoint_write_s;
      since_checkpoint = 0.0;
    }
  }
  // The degraded tail (if any) bills at the on-demand price.
  const auto& type = cloud::instance(spec.instance);
  o.cost_usd = cloud::cost_usd(type, o.wall_seconds - o.floor_wall_seconds,
                               spec.count) *
                   config.price_factor +
               cloud::cost_usd(type, o.floor_wall_seconds, spec.count);
  out.outcome = o;
  return out;
}

}  // namespace stash::profiler
