#include "stash/session.h"

#include <algorithm>
#include <array>
#include <functional>
#include <stdexcept>

namespace stash::profiler {

TrainingEstimate estimate_training(const StashProfiler& profiler,
                                   const ClusterSpec& spec, int per_gpu_batch,
                                   int epochs) {
  if (epochs < 1) throw std::invalid_argument("estimate_training: epochs < 1");

  // The two steps are independent simulations; overlap them on the
  // profiler's execution context (serial without one). The instrumented
  // step keeps its sinks — only one of the two can be instrumented, so
  // there is no concurrent registry writer.
  exec::ThreadPool* pool =
      profiler.options().exec != nullptr ? profiler.options().exec->pool() : nullptr;
  ddl::TrainResult cold, warm;
  std::array<std::function<void()>, 2> steps = {
      [&] { cold = profiler.run_step(spec, Step::kRealCold, per_gpu_batch); },
      [&] { warm = profiler.run_step(spec, Step::kRealWarm, per_gpu_batch); },
  };
  exec::parallel_for(pool, steps.size(), [&](std::size_t i) { steps[i](); });

  double samples = profiler.dataset().num_samples;
  TrainingEstimate e;
  e.config_label = spec.label();
  e.model_name = profiler.model().name();
  e.epochs = epochs;
  e.per_gpu_batch = per_gpu_batch;
  e.first_epoch_seconds = cold.epoch_time(samples, per_gpu_batch);
  e.steady_epoch_seconds = warm.epoch_time(samples, per_gpu_batch);
  e.first_iteration_seconds = cold.per_iteration;
  e.steady_iteration_seconds = warm.per_iteration;
  e.total_seconds =
      e.first_epoch_seconds + (epochs - 1) * e.steady_epoch_seconds;
  e.total_cost_usd =
      cloud::cost_usd(cloud::instance(spec.instance), e.total_seconds, spec.count);
  double all_warm = epochs * e.steady_epoch_seconds;
  e.cold_start_overhead_pct =
      all_warm > 0.0
          ? std::max(0.0, (e.total_seconds - all_warm) / e.total_seconds * 100.0)
          : 0.0;
  return e;
}

}  // namespace stash::profiler
