// Instance recommendation from stall profiles (paper §V recommendations).
//
// The paper's takeaways, encoded: rank candidate cluster configurations for
// a model by projected epoch time and cost, using the Stash profile of each
// candidate. Users get the paper's conclusions (2xlarge most cost-optimal,
// 16xlarge most performant for P3, avoid network-connected clusters, avoid
// p2.16xlarge) computed for *their* model rather than asserted.
#pragma once

#include <string>
#include <vector>

#include "stash/profiler.h"

namespace stash::profiler {

struct Recommendation {
  ClusterSpec spec;
  StallReport report;
  // Rank positions (0 = best) under each objective.
  int by_time = 0;
  int by_cost = 0;
};

struct RecommendOptions {
  // Candidate configurations; empty = the paper's characterization set for
  // the model's family preference (all P2 and P3 single-machine types plus
  // the 8xlarge*2 network configurations).
  std::vector<ClusterSpec> candidates;
  int per_gpu_batch = 32;
  ProfileOptions profile{};
};

// The paper's default candidate set.
std::vector<ClusterSpec> default_candidates();

// Profiles every candidate and returns them ranked by epoch time (primary
// listing); each entry also carries its cost rank. Candidates whose GPU
// memory cannot fit the batch are skipped.
std::vector<Recommendation> recommend(const dnn::Model& model,
                                      const dnn::Dataset& dataset,
                                      const RecommendOptions& options);

}  // namespace stash::profiler
