// Describes one training-cluster configuration under characterization,
// e.g. "p3.16xlarge", "p3.8xlarge*2", or "p2.8xlarge using 4 of 8 GPUs".
#pragma once

#include <optional>
#include <string>

#include "cloud/allocation.h"
#include "cloud/instance.h"

namespace stash::profiler {

struct ClusterSpec {
  std::string instance;  // catalog name
  int count = 1;         // machines, joined by the placement-group fabric
  // GPUs used per machine (-1 = all). Stash step 5 splits a machine's GPU
  // count across two network-connected peers using this.
  int gpus_per_machine = -1;
  cloud::CrossbarSlice slice = cloud::CrossbarSlice::kFragmented;

  int gpus_used() const {
    int per = gpus_per_machine > 0 ? gpus_per_machine
                                   : cloud::instance(instance).num_gpus;
    return per * count;
  }

  // Human-readable label matching the paper's figures: "p3.8xlarge*2".
  std::string label() const {
    std::string s = instance;
    if (count > 1) s += "*" + std::to_string(count);
    if (gpus_per_machine > 0) s += "[" + std::to_string(gpus_per_machine) + "gpu]";
    return s;
  }

  double hourly_price() const {
    return cloud::instance(instance).price_per_hour * count;
  }
};

// The network-connected counterpart Stash step 5 measures against: the
// same total GPU count spread over two machines of the same family.
// nullopt when the spec is already multi-machine or has a single GPU.
std::optional<ClusterSpec> network_split(const ClusterSpec& spec);

}  // namespace stash::profiler
