// Event-driven spot-instance outcome estimation.
//
// cloud::simulate_spot_run prices revocations with a closed-form rework
// model (lost work = time since last checkpoint, restarts cost a flat
// configured overhead). This module replaces those assumptions with
// measurements taken from the simulator: it runs an actual revocation
// through ddl::Trainer's crash-recovery machinery — barrier-watchdog
// detection, reprovision wait, checkpoint replay at simulated training
// speed — and drives the Poisson interruption process with the measured
// per-iteration time and per-revocation recovery cost. The outer loop stays
// analytic (a multi-hour job cannot be replayed iteration-by-iteration),
// but every constant it uses is observed, not assumed.
#pragma once

#include <cstdint>

#include "cloud/spot.h"
#include "stash/cluster_spec.h"
#include "stash/profiler.h"

namespace stash::profiler {

struct SpotReplayResult {
  cloud::SpotOutcome outcome;
  // Measured warm-data per-iteration time on the healthy cluster.
  double healthy_iteration_s = 0.0;
  // Measured fixed cost of one revocation (watchdog detection gap +
  // reprovision wait), from the calibration run's recovery record.
  double recovery_fixed_cost_s = 0.0;
  // Trainer simulations executed (healthy + crash calibration).
  int trainer_runs = 0;
};

// Estimates wall time and spot bill for `work_seconds` of useful training
// on `spec`, revocations arriving per `config`. Deterministic given `seed`.
// `watchdog_timeout_s` sets the calibration run's barrier-watchdog window;
// 0 selects the automatic default (twice the measured iteration time).
// Negative, NaN, or infinite values throw std::invalid_argument. When the
// interruption process outpaces checkpoint progress the outcome degrades to
// the on-demand floor (outcome.degraded_to_floor) instead of diverging.
SpotReplayResult replay_spot_run(const StashProfiler& prof, const ClusterSpec& spec,
                                 int per_gpu_batch, double work_seconds,
                                 const cloud::SpotConfig& config,
                                 std::uint64_t seed,
                                 double watchdog_timeout_s = 0.0);

}  // namespace stash::profiler
