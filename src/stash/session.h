// End-to-end training estimates from the profiler steps.
//
// The paper reports per-epoch time and cost, noting that "the entire
// training time ... scales linearly with the number of epochs" but that
// the FIRST epoch differs: it reads the dataset cold from the SSD while
// later epochs hit the DRAM cache (DS-Analyzer's step 3 vs step 4). This
// module turns the two measured steps into a whole-run estimate — what a
// tenant actually pays to train a model for E epochs on a configuration.
#pragma once

#include "stash/profiler.h"

namespace stash::profiler {

struct TrainingEstimate {
  std::string config_label;
  std::string model_name;
  int epochs = 0;
  int per_gpu_batch = 0;

  double first_epoch_seconds = 0.0;   // cold-cache epoch (step 3 scaled)
  double steady_epoch_seconds = 0.0;  // warm-cache epochs (step 4 scaled)
  // The measured per-iteration times behind the epoch scalings, for callers
  // that need iteration granularity (the planner's crash calibration, the
  // autopilot's throughput model).
  double first_iteration_seconds = 0.0;
  double steady_iteration_seconds = 0.0;
  double total_seconds = 0.0;
  double total_cost_usd = 0.0;

  // Share of the whole run spent waiting on the cold first epoch's disk.
  double cold_start_overhead_pct = 0.0;
};

// Profiles steps 3 and 4 on the spec and extrapolates an E-epoch run.
TrainingEstimate estimate_training(const StashProfiler& profiler,
                                   const ClusterSpec& spec, int per_gpu_batch,
                                   int epochs);

}  // namespace stash::profiler
