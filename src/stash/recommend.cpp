#include "stash/recommend.h"

#include <algorithm>

#include "ddl/trainer.h"

namespace stash::profiler {

std::vector<ClusterSpec> default_candidates() {
  std::vector<ClusterSpec> specs;
  for (const char* name : {"p2.xlarge", "p2.8xlarge", "p2.16xlarge", "p3.2xlarge",
                           "p3.8xlarge", "p3.16xlarge", "p3.24xlarge"})
    specs.push_back(ClusterSpec{name});
  specs.push_back(ClusterSpec{"p2.8xlarge", 2});
  specs.push_back(ClusterSpec{"p3.8xlarge", 2});
  return specs;
}

std::vector<Recommendation> recommend(const dnn::Model& model,
                                      const dnn::Dataset& dataset,
                                      const RecommendOptions& options) {
  std::vector<ClusterSpec> candidates =
      options.candidates.empty() ? default_candidates() : options.candidates;

  // Telemetry sinks are stripped: nine candidates' overlaid counters in one
  // registry would be meaningless, and with a pool attached they would race.
  ProfileOptions popt = options.profile;
  popt.trace = nullptr;
  popt.metrics = nullptr;
  StashProfiler profiler(model, dataset, popt);
  std::vector<Recommendation> recs;
  for (const ClusterSpec& spec : candidates) {
    const auto& type = cloud::instance(spec.instance);
    if (model.train_memory_bytes(options.per_gpu_batch) > type.gpu.memory_bytes)
      continue;  // batch does not fit this GPU
    Recommendation r;
    r.spec = spec;
    recs.push_back(std::move(r));
  }

  // Profile the surviving candidates across the execution context's pool.
  // Each profile fans its own five steps out too; the caller-helps
  // parallel_for makes that nesting safe, and the shared SimCache dedups
  // scenarios that recur across candidates (e.g. the p3.8xlarge*2 network
  // configuration is also p3.16xlarge's step-5 split). Results land by
  // candidate index, so the ranking below never sees completion order.
  exec::ThreadPool* pool =
      options.profile.exec != nullptr ? options.profile.exec->pool() : nullptr;
  exec::parallel_for(pool, recs.size(), [&](std::size_t i) {
    recs[i].report = profiler.profile(recs[i].spec, options.per_gpu_batch);
  });

  std::vector<std::size_t> idx(recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) idx[i] = i;

  auto assign_ranks = [&](auto key, int Recommendation::*field) {
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return key(recs[a]) < key(recs[b]); });
    for (std::size_t rank = 0; rank < idx.size(); ++rank)
      recs[idx[rank]].*field = static_cast<int>(rank);
  };
  assign_ranks([](const Recommendation& r) { return r.report.epoch_seconds; },
               &Recommendation::by_time);
  assign_ranks([](const Recommendation& r) { return r.report.epoch_cost_usd; },
               &Recommendation::by_cost);

  std::sort(recs.begin(), recs.end(), [](const Recommendation& a,
                                         const Recommendation& b) {
    return a.by_time < b.by_time;
  });
  return recs;
}

}  // namespace stash::profiler
