// Stash: the stall-centric DDL profiler (the paper's core contribution).
//
// Stash decomposes distributed training time into four stalls by running
// five controlled configurations of the same workload (paper §IV-B):
//
//   step 1 (T1): synthetic data, ONE GPU of the machine   -> no communication
//   step 2 (T2): synthetic data, all GPUs of the spec     -> interconnect only
//   step 3 (T3): real data, cold caches                   -> + disk + CPU
//   step 4 (T4): real data, fully DRAM-cached             -> + CPU
//   step 5 (T5): synthetic data, same GPU count over two
//                network-connected machines               -> + network
//
//   interconnect stall % = (T2 - T1) / T1 * 100
//   network stall %      = (T5 - T2) / T2 * 100
//   prep (CPU) stall %   = (T4 - T2) / T4 * 100
//   fetch (disk) stall % = (T3 - T4) / T3 * 100
//
// Steps 2-4 are DS-Analyzer's methodology; steps 1 and 5 are Stash's
// additions. All times are per training iteration; because the workload is
// strictly periodic, per-iteration differences equal per-epoch differences
// scaled by the (identical) iteration count.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ddl/train_config.h"
#include "ddl/trainer.h"
#include "dnn/dataset.h"
#include "dnn/model.h"
#include "exec/exec_context.h"
#include "faults/fault_plan.h"
#include "obs/progress.h"
#include "stash/cluster_spec.h"

namespace stash::profiler {

enum class Step {
  kSingleGpuSynthetic,  // 1
  kAllGpuSynthetic,     // 2
  kRealCold,            // 3
  kRealWarm,            // 4
  kNetworkSynthetic,    // 5 (run on the network-split spec)
};

// The two-machine spec used for step 5: the original single-machine spec's
// GPUs split evenly over two smaller same-family instances. nullopt when no
// such split exists (multi-machine specs, odd GPU counts, no catalog match).
std::optional<ClusterSpec> network_split(const ClusterSpec& spec);

struct StallReport {
  std::string config_label;
  std::string model_name;
  int per_gpu_batch = 0;
  int gpus = 0;

  // Per-iteration times of each profiler step (seconds). t5 is NaN when no
  // network split exists (single-GPU specs).
  double t1 = 0.0, t2 = 0.0, t3 = 0.0, t4 = 0.0, t5 = 0.0;
  bool has_network_step = false;

  double ic_stall_pct = 0.0;
  double nw_stall_pct = 0.0;
  double prep_stall_pct = 0.0;
  double fetch_stall_pct = 0.0;
  // Fault stall (fifth category): share of the faulted warm run's wall time
  // lost to fault detection, reprovision waits, and replayed work. Always 0
  // on healthy profiles.
  double fault_stall_pct = 0.0;

  // Set when a stall percentage had a ~zero or non-finite denominator and
  // was clamped to 0 instead of printing -nan%; such a report's percentages
  // are not trustworthy.
  bool degenerate_pcts = false;

  // Steady-state (warm-cache) epoch projections for the cost figures.
  double epoch_seconds = 0.0;
  double epoch_cost_usd = 0.0;
};

struct ProfileOptions {
  int iterations = 6;
  int warmup_iterations = 2;
  double bucket_bytes = 0.0;  // per-tensor, the paper's granularity
  coll::CollectiveConfig collective{};
  int loader_workers_per_gpu = 3;
  int prefetch_depth = 4;

  // Optional telemetry sinks (not owned; may be null). They attach to the
  // run of `instrument_step` — by default the warm-data step, the one
  // closest to production — so a profile yields one trace and one metrics
  // snapshot rather than five overlaid ones. run_step() also honors them
  // whenever the step it is asked to run matches. After profile(), the
  // profiler additionally records the derived T1..T5 and stall percentages
  // into the registry under "profiler/".
  util::TraceRecorder* trace = nullptr;
  telemetry::MetricsRegistry* metrics = nullptr;
  Step instrument_step = Step::kRealWarm;

  // Optional causal-edge sink (not owned; may be null). Like trace/metrics
  // it attaches to `instrument_step` only: a CausalLog models exactly one
  // run and is not mergeable, so instrumenting several steps at once would
  // interleave unrelated DAGs. Causal runs always bypass the SimCache — the
  // recorded edges are the point, and a cache hit would skip them.
  obs::CausalLog* causal = nullptr;

  // Optional live progress sink (not owned; may be null). profile() reports
  // each completed step here. Progress goes to a human on stderr and never
  // into machine-readable outputs, so it does not perturb determinism.
  obs::ProgressReporter* progress = nullptr;

  // Optional execution context (not owned; may be null = serial,
  // uncached). With one attached, profile() dispatches its five steps
  // across the context's pool and run_step() memoizes cacheable scenarios
  // in the context's SimCache, so identical (spec, step, batch) runs across
  // profile/estimate/recommend/benches execute exactly once per process.
  // Instrumented runs (trace/metrics attached) and fault-injected runs
  // bypass the cache: their side effects are the point. Results never
  // depend on the jobs count — outputs are merged in scenario order.
  exec::ExecContext* exec = nullptr;

  // Throws std::invalid_argument (with the offending field named) on
  // nonsense values; called by every profiling entry point so a bad option
  // fails fast instead of producing silent garbage.
  void validate() const;
};

// Fault-conditioned profiling: how one plan is applied to the five steps.
struct FaultProfileOptions {
  ddl::RecoveryPolicy policy = ddl::RecoveryPolicy::kCheckpointRestart;
  double barrier_timeout_s = 30.0;
  double checkpoint_interval_s = 900.0;
  double checkpoint_write_s = 20.0;

  ddl::FaultToleranceConfig tolerance(const faults::FaultState* state) const {
    ddl::FaultToleranceConfig ft;
    ft.faults = state;
    ft.policy = policy;
    ft.barrier_timeout_s = barrier_timeout_s;
    ft.checkpoint_interval_s = checkpoint_interval_s;
    ft.checkpoint_write_s = checkpoint_write_s;
    return ft;
  }
};

// Degradation report: the same five-step stall decomposition measured on a
// healthy cluster and again with a FaultPlan injected into every step.
struct FaultProfileReport {
  StallReport healthy;
  StallReport faulted;
  // From the faulted warm-data run (the step closest to production).
  double fault_stall_seconds = 0.0;
  double checkpoint_seconds = 0.0;
  int checkpoints_written = 0;
  int gpus_at_end = 0;
  std::vector<ddl::RecoveryRecord> recoveries;
  // faulted steady-epoch time over healthy steady-epoch time (>= 1).
  double epoch_slowdown = 1.0;
};

class StashProfiler {
 public:
  StashProfiler(dnn::Model model, dnn::Dataset dataset, ProfileOptions options = {});

  // Runs one profiler step on a spec and returns the full train result.
  // With a non-null `plan`, the step runs with the plan's faults injected
  // and recovery per `fopt`.
  ddl::TrainResult run_step(const ClusterSpec& spec, Step step, int per_gpu_batch,
                            const faults::FaultPlan* plan = nullptr,
                            const FaultProfileOptions& fopt = {}) const;

  // Runs the complete five-step methodology.
  StallReport profile(const ClusterSpec& spec, int per_gpu_batch) const;

  // Runs the methodology twice — healthy and with `plan` injected — and
  // reports the fault-conditioned degradation: healthy vs. faulted T1-T5,
  // stall percentages, and the recovery log of the faulted warm run.
  FaultProfileReport profile_under_faults(const ClusterSpec& spec, int per_gpu_batch,
                                          const faults::FaultPlan& plan,
                                          const FaultProfileOptions& fopt = {}) const;

  const dnn::Model& model() const { return model_; }
  const dnn::Dataset& dataset() const { return dataset_; }
  const ProfileOptions& options() const { return options_; }

 private:
  ddl::TrainConfig step_config(Step step, int per_gpu_batch, int gpus_in_spec) const;
  // The actual step runner with explicit telemetry sinks; run_step() passes
  // the options' sinks for the instrumented step, profile_impl() substitutes
  // a private per-worker registry so parallel runs merge deterministically.
  ddl::TrainResult run_step_sinked(const ClusterSpec& spec, Step step,
                                   int per_gpu_batch, const faults::FaultPlan* plan,
                                   const FaultProfileOptions& fopt,
                                   util::TraceRecorder* trace,
                                   telemetry::MetricsRegistry* metrics,
                                   obs::CausalLog* causal) const;
  // The simulation itself, no cache consultation (get_or_run's compute fn).
  ddl::TrainResult run_step_uncached(const ClusterSpec& spec, Step step,
                                     int per_gpu_batch,
                                     const faults::FaultPlan* plan,
                                     const FaultProfileOptions& fopt,
                                     util::TraceRecorder* trace,
                                     telemetry::MetricsRegistry* metrics,
                                     obs::CausalLog* causal) const;
  StallReport profile_impl(const ClusterSpec& spec, int per_gpu_batch,
                           const faults::FaultPlan* plan,
                           const FaultProfileOptions& fopt,
                           ddl::TrainResult* warm_out) const;

  dnn::Model model_;
  dnn::Dataset dataset_;
  ProfileOptions options_;
};

}  // namespace stash::profiler
