#include "stash/attribute.h"

#include <array>
#include <cmath>
#include <functional>

#include "obs/causal_log.h"
#include "util/json.h"

namespace stash::profiler {

namespace {

const char* step_scenario_name(Step step) {
  switch (step) {
    case Step::kSingleGpuSynthetic: return "single_gpu_synthetic";
    case Step::kAllGpuSynthetic: return "all_gpu_synthetic";
    case Step::kRealCold: return "real_cold";
    case Step::kRealWarm: return "real_warm";
    case Step::kNetworkSynthetic: return "network_synthetic";
  }
  return "unknown";
}

double per_iter(const obs::BlameReport& r, obs::Category c) {
  return r.per_iteration_s[static_cast<std::size_t>(c)];
}

}  // namespace

obs::BlameReport attribute_step(const StashProfiler& profiler,
                                const ClusterSpec& spec, Step step,
                                int per_gpu_batch, util::TraceRecorder* trace) {
  obs::CausalLog log;
  ProfileOptions opts = profiler.options();
  opts.trace = trace;
  opts.metrics = nullptr;
  opts.causal = &log;
  opts.progress = nullptr;
  opts.instrument_step = step;
  StashProfiler instrumented(profiler.model(), profiler.dataset(), opts);
  instrumented.run_step(spec, step, per_gpu_batch);

  obs::BlameReport r = obs::analyze_critical_path(log);
  r.scenario = step_scenario_name(step);
  r.model_name = profiler.model().name();
  r.config_label = spec.label();
  r.gpus = spec.gpus_used();
  r.per_gpu_batch = per_gpu_batch;
  if (trace != nullptr) obs::annotate_trace(r, *trace);
  return r;
}

BlameProfile attribute(const StashProfiler& profiler, const ClusterSpec& spec,
                       int per_gpu_batch, util::TraceRecorder* trace) {
  BlameProfile bp;

  // Differencing pass first: the causal runs below own all instrumentation,
  // and with an ExecContext attached the five uninstrumented steps land in
  // the SimCache where recommend/estimate reuse them.
  ProfileOptions diff_opts = profiler.options();
  diff_opts.trace = nullptr;
  diff_opts.metrics = nullptr;
  diff_opts.causal = nullptr;
  StashProfiler diff_profiler(profiler.model(), profiler.dataset(), diff_opts);
  bp.differencing = diff_profiler.profile(spec, per_gpu_batch);

  std::optional<ClusterSpec> split = network_split(spec);
  bp.has_network = bp.differencing.has_network_step && split.has_value();

  obs::ProgressReporter* progress = profiler.options().progress;
  if (progress != nullptr)
    progress->begin("attribute " + spec.label(), bp.has_network ? 4 : 3);
  auto tick = [&](const char* what) {
    if (progress != nullptr) progress->step(what);
  };

  // The four causal runs are independent simulations; dispatch them across
  // the pool. Each owns a private CausalLog, and results land in fixed
  // slots, so the profile is byte-identical for any --jobs value. The trace
  // attaches to the primary run only — one timeline, not four overlaid.
  util::TraceRecorder* warm_trace = bp.has_network ? nullptr : trace;
  util::TraceRecorder* step5_trace = bp.has_network ? trace : nullptr;
  std::array<std::function<void()>, 4> runs = {
      [&] {
        bp.step2 = attribute_step(profiler, spec, Step::kAllGpuSynthetic,
                                  per_gpu_batch, nullptr);
        tick("causal T2 all-GPU synthetic");
      },
      [&] {
        bp.cold = attribute_step(profiler, spec, Step::kRealCold, per_gpu_batch,
                                 nullptr);
        tick("causal T3 real cold-cache");
      },
      [&] {
        bp.warm = attribute_step(profiler, spec, Step::kRealWarm, per_gpu_batch,
                                 warm_trace);
        tick("causal T4 real warm-cache");
      },
      [&] {
        if (!bp.has_network) return;
        bp.step5 = attribute_step(profiler, *split, Step::kNetworkSynthetic,
                                  per_gpu_batch, step5_trace);
        tick("causal T5 two-machine synthetic");
      },
  };
  exec::ExecContext* exec = profiler.options().exec;
  exec::ThreadPool* pool = exec != nullptr ? exec->pool() : nullptr;
  exec::parallel_for(pool, runs.size(), [&](std::size_t i) { runs[i](); });
  if (progress != nullptr) progress->done();

  // Per-category comparison, each side in that category's differencing
  // coordinate (profiler.h formulas).
  const StallReport& d = bp.differencing;
  bp.ic.available = true;
  bp.ic.differencing_s = d.t2 - d.t1;
  bp.ic.differencing_pct = d.ic_stall_pct;
  bp.ic.blame_s = per_iter(bp.step2, obs::Category::kInterconnect);
  bp.ic.blame_pct = bp.step2.ic_stall_pct;

  bp.nw.available = bp.has_network;
  if (bp.nw.available) {
    bp.nw.differencing_s = d.t5 - d.t2;
    bp.nw.differencing_pct = d.nw_stall_pct;
    bp.nw.blame_s = per_iter(bp.step5, obs::Category::kNetwork);
    bp.nw.blame_pct = bp.step5.nw_stall_pct;
  }

  bp.prep.available = true;
  bp.prep.differencing_s = d.t4 - d.t2;
  bp.prep.differencing_pct = d.prep_stall_pct;
  bp.prep.blame_s = per_iter(bp.warm, obs::Category::kCpuPrep) +
                    per_iter(bp.warm, obs::Category::kH2D) +
                    per_iter(bp.warm, obs::Category::kPipeline);
  bp.prep.blame_pct = bp.warm.prep_stall_pct;

  bp.fetch.available = true;
  bp.fetch.differencing_s = d.t3 - d.t4;
  bp.fetch.differencing_pct = d.fetch_stall_pct;
  bp.fetch.blame_s = per_iter(bp.cold, obs::Category::kDisk);
  bp.fetch.blame_pct = bp.cold.fetch_stall_pct;

  return bp;
}

namespace {

void write_check(util::JsonWriter& w, const char* name, const BlameCheck& c) {
  w.key(name).begin_object();
  w.key("available").value(c.available);
  w.key("differencing_s").value(c.differencing_s);
  w.key("blame_s").value(c.blame_s);
  w.key("differencing_pct").value(c.differencing_pct);
  w.key("blame_pct").value(c.blame_pct);
  w.key("delta_pct").value(c.delta_pct());
  w.end_object();
}

}  // namespace

std::string blame_profile_to_json(const BlameProfile& bp) {
  util::JsonWriter w;
  w.begin_object();
  obs::write_blame_fields(w, bp.primary());
  const StallReport& d = bp.differencing;
  w.key("differencing").begin_object();
  w.key("t1_s").value(d.t1);
  w.key("t2_s").value(d.t2);
  w.key("t3_s").value(d.t3);
  w.key("t4_s").value(d.t4);
  if (d.has_network_step)
    w.key("t5_s").value(d.t5);
  else
    w.key("t5_s").null();
  w.key("ic_stall_pct").value(d.ic_stall_pct);
  w.key("nw_stall_pct").value(d.nw_stall_pct);
  w.key("prep_stall_pct").value(d.prep_stall_pct);
  w.key("fetch_stall_pct").value(d.fetch_stall_pct);
  w.end_object();
  w.key("crosscheck").begin_object();
  write_check(w, "interconnect", bp.ic);
  write_check(w, "network", bp.nw);
  write_check(w, "prep", bp.prep);
  write_check(w, "fetch", bp.fetch);
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace stash::profiler
