// Causal critical-path attribution: the ground-truth companion to the
// five-step differencing methodology.
//
// Differencing infers each stall category from the *difference* between two
// runs (e.g. interconnect = T2 - T1); the causal engine instead instruments
// one run's full event graph (obs::CausalLog) and walks its critical path,
// so each category's share is measured directly on the timeline that
// produced it. The two views should agree — attribute() runs both and
// reports the per-category delta, which is the profiler's built-in
// self-validation: a large delta means either the differencing assumptions
// (perfect periodicity, additive stalls) or the causal instrumentation
// (edge coverage) broke for this scenario.
#pragma once

#include <optional>
#include <string>

#include "obs/critical_path.h"
#include "stash/profiler.h"

namespace stash::profiler {

// One differencing-vs-causal comparison for a stall category. Both sides
// are expressed in the differencing coordinate of that category (see the
// formulas in profiler.h), so delta_pct is directly interpretable as
// percentage points of stall.
struct BlameCheck {
  bool available = false;
  double differencing_s = 0.0;  // seconds/iteration the differencing implies
  double blame_s = 0.0;         // seconds/iteration on the critical path
  double differencing_pct = 0.0;
  double blame_pct = 0.0;
  double delta_pct() const { return blame_pct - differencing_pct; }
};

// Full cross-checked attribution: the differencing decomposition plus four
// causally-instrumented runs, one per stall coordinate.
struct BlameProfile {
  StallReport differencing;

  // Causal blame reports for the runs each differencing formula references:
  // step 2 (interconnect coordinate), step 3 (fetch), step 4 (prep, and the
  // production-shaped run), step 5 on the network split (network; valid
  // only when has_network).
  obs::BlameReport step2;
  obs::BlameReport cold;
  obs::BlameReport warm;
  obs::BlameReport step5;
  bool has_network = false;

  // The report `attribute` presents as *the* blame for this scenario: the
  // two-machine step-5 run when a network split exists (it exercises every
  // category's mechanism), otherwise the warm-data run.
  const obs::BlameReport& primary() const { return has_network ? step5 : warm; }

  BlameCheck ic;     // interconnect: step-2 blame vs (T2-T1)/T1
  BlameCheck nw;     // network: step-5 blame vs (T5-T2)/T2
  BlameCheck prep;   // CPU prep (+H2D +pipeline): warm blame vs (T4-T2)/T4
  BlameCheck fetch;  // disk fetch: cold blame vs (T3-T4)/T3
};

// Runs one profiler step with a private CausalLog attached and returns the
// analyzed blame report with scenario metadata filled. When `trace` is
// non-null the run records its timeline there and the critical path is
// appended as a highlighted track.
obs::BlameReport attribute_step(const StashProfiler& profiler,
                                const ClusterSpec& spec, Step step,
                                int per_gpu_batch,
                                util::TraceRecorder* trace = nullptr);

// The full cross-check: five-step differencing (cached steps shared through
// the profiler's ExecContext), then the four causal runs, then the
// per-category comparison. `trace` attaches to the primary run only.
BlameProfile attribute(const StashProfiler& profiler, const ClusterSpec& spec,
                       int per_gpu_batch, util::TraceRecorder* trace = nullptr);

// stash.blame/1 document of the primary report, extended with sibling
// "differencing" and "crosscheck" objects (schema unchanged — consumers of
// the base report ignore the extra keys).
std::string blame_profile_to_json(const BlameProfile& bp);

}  // namespace stash::profiler
