#include "stash/ds_analyzer.h"

#include <algorithm>

namespace stash::profiler {

DsAnalyzer::DsAnalyzer(dnn::Model model, dnn::Dataset dataset, ProfileOptions options)
    : inner_(std::move(model), std::move(dataset), options) {}

DsAnalyzerReport DsAnalyzer::profile(const ClusterSpec& spec,
                                     int per_gpu_batch) const {
  DsAnalyzerReport report;
  report.config_label = spec.label();
  report.model_name = inner_.model().name();
  report.per_gpu_batch = per_gpu_batch;

  report.t2 = inner_.run_step(spec, Step::kAllGpuSynthetic, per_gpu_batch).per_iteration;
  report.t3 = inner_.run_step(spec, Step::kRealCold, per_gpu_batch).per_iteration;
  report.t4 = inner_.run_step(spec, Step::kRealWarm, per_gpu_batch).per_iteration;

  auto pct = [](double num, double den) {
    return den > 0.0 ? std::max(0.0, num / den * 100.0) : 0.0;
  };
  report.prep_stall_pct = pct(report.t4 - report.t2, report.t4);
  report.fetch_stall_pct = pct(report.t3 - report.t4, report.t3);

  // What DS-Analyzer's step 2 silently absorbs: communication time hiding
  // inside its "maximum ingestion rate" baseline. Against pure compute
  // (single-GPU synthetic, which DS-Analyzer never runs) the gap shows up.
  double t1 = inner_.run_step(spec, Step::kSingleGpuSynthetic, per_gpu_batch)
                  .per_iteration;
  report.unattributed_pct = pct(report.t2 - t1, report.t4);
  return report;
}

}  // namespace stash::profiler
