#include "dnn/bert.h"

#include <stdexcept>
#include <string>
#include <vector>

namespace stash::dnn {

Model make_bert(const BertConfig& cfg) {
  if (cfg.hidden <= 0 || cfg.num_layers <= 0 || cfg.seq_len <= 0)
    throw std::invalid_argument("make_bert: invalid config");

  std::vector<Layer> layers;
  const double h = cfg.hidden;
  const double s = cfg.seq_len;
  // Transformer training stores several intermediates per labelled output
  // (pre-GELU, dropout masks, softmax copies, autograd workspaces); the
  // multiplier calibrates total footprint so that BERT-large at seq 384
  // maxes out at per-GPU batch 4 on a 16 GiB V100, matching the paper.
  const double kStoredIntermediates = 4.5;
  const double token_act = s * h * 4.0 * kStoredIntermediates;

  // Embeddings: word + position + token-type + LayerNorm. Embedding lookups
  // cost negligible FLOPs but their gradients are exchanged in full.
  {
    Layer w{"embed.word", LayerKind::kEmbedding, static_cast<double>(cfg.vocab) * h,
            0.0, token_act};
    w.output_bytes_per_sample = s * h * 4.0;
    layers.push_back(w);
  }
  layers.push_back(Layer{"embed.pos", LayerKind::kEmbedding,
                         static_cast<double>(cfg.max_position) * h, 0.0, 0.0});
  layers.push_back(Layer{"embed.type", LayerKind::kEmbedding, 2.0 * h, 0.0, 0.0});
  {
    Layer ln{"embed.ln", LayerKind::kLayerNorm, 2.0 * h, 4.0 * s * h, token_act};
    ln.output_bytes_per_sample = s * h * 4.0;
    layers.push_back(ln);
  }

  for (int i = 0; i < cfg.num_layers; ++i) {
    std::string base = "encoder." + std::to_string(i);
    auto dense = [&](const std::string& name, double in, double out,
                     double extra_flops = 0.0, double extra_act = 0.0) {
      Layer l{base + "." + name, LayerKind::kAttention, in * out + out,
              2.0 * s * in * out + extra_flops,
              (s * out * 4.0 + extra_act) * kStoredIntermediates};
      l.output_bytes_per_sample = s * out * 4.0;  // wire size of the output
      layers.push_back(l);
    };
    // Self-attention projections.
    dense("q", h, h);
    dense("k", h, h);
    // Attention scores and context mix ride on the V projection entry:
    // 2 * (2 * S^2 * H) FLOPs, S^2*heads score activations.
    dense("v", h, h, 4.0 * s * s * h, s * s * 16.0 * 4.0);
    dense("attn.out", h, h);
    {
      Layer ln{base + ".ln1", LayerKind::kLayerNorm, 2.0 * h, 4.0 * s * h, token_act};
      ln.output_bytes_per_sample = s * h * 4.0;
      layers.push_back(ln);
    }
    dense("ff.in", h, cfg.intermediate);
    dense("ff.out", cfg.intermediate, h);
    {
      Layer ln{base + ".ln2", LayerKind::kLayerNorm, 2.0 * h, 4.0 * s * h, token_act};
      ln.output_bytes_per_sample = s * h * 4.0;
      layers.push_back(ln);
    }
  }

  // Pooler + span-prediction head (SQuAD).
  layers.push_back(Layer{"pooler", LayerKind::kFullyConnected, h * h + h, 2.0 * h * h,
                         h * 4.0});
  layers.push_back(Layer{"qa_head", LayerKind::kFullyConnected, 2.0 * h + 2.0,
                         2.0 * s * h * 2.0, s * 2.0 * 4.0});

  // Input: token ids + mask + type ids (int32) for one sample.
  double input_bytes = s * 3.0 * 4.0;
  std::string name = cfg.hidden == 1024 && cfg.num_layers == 24 ? "bert-large" : "bert";
  return Model(name, std::move(layers), input_bytes);
}

Model make_bert_large() { return make_bert(BertConfig{}); }

}  // namespace stash::dnn
