// DNN model description: an ordered list of layers plus input geometry.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dnn/layer.h"

namespace stash::dnn {

class Model {
 public:
  Model(std::string name, std::vector<Layer> layers, double input_tensor_bytes);

  const std::string& name() const { return name_; }
  const std::vector<Layer>& layers() const { return layers_; }
  std::size_t num_layers() const { return layers_.size(); }
  std::size_t num_param_tensors() const { return num_param_tensors_; }

  double total_params() const { return total_params_; }
  // Total gradient volume exchanged per iteration (fp32).
  double gradient_bytes() const { return total_params_ * 4.0; }
  double fwd_flops_per_sample() const { return fwd_flops_; }
  // Standard approximation: backward costs twice the forward.
  double bwd_flops_per_sample() const { return 2.0 * fwd_flops_; }

  // Decoded input tensor size for one sample (H2D copy volume).
  double input_tensor_bytes() const { return input_tensor_bytes_; }
  double activation_bytes_per_sample() const { return activation_bytes_; }

  // Gradient tensor sizes in backward order (last layer first): the order
  // in which DDP-style training makes gradients available for all-reduce.
  std::vector<double> gradient_tensors_backward() const;

  // One step of the backward pass per parameter tensor, in execution order.
  // `flops_per_sample` is the backward compute (2x forward) attributed to
  // the tensor's layer plus any parameter-free layers encountered since the
  // previous step; after the step completes, `grad_bytes` of gradient
  // become available for all-reduce. The steps' FLOPs sum to
  // bwd_flops_per_sample() and the bytes to gradient_bytes().
  struct BackwardStep {
    double grad_bytes;
    double flops_per_sample;
  };
  std::vector<BackwardStep> backward_steps() const;

  // Device memory needed to train with the given per-GPU batch size:
  // weights + gradients + optimizer state (SGD momentum) + activations +
  // a fixed framework/workspace reserve.
  double train_memory_bytes(int batch_size) const;

 private:
  std::string name_;
  std::vector<Layer> layers_;
  double input_tensor_bytes_;
  double total_params_ = 0.0;
  double fwd_flops_ = 0.0;
  double activation_bytes_ = 0.0;
  std::size_t num_param_tensors_ = 0;
};

}  // namespace stash::dnn
