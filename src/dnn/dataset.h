// Training dataset descriptors (paper Table II).
#pragma once

#include <stdexcept>
#include <string>

namespace stash::dnn {

struct Dataset {
  std::string name;
  double num_samples = 0.0;
  double total_bytes = 0.0;            // on-disk footprint
  double prep_cpu_seconds_per_sample = 0.0;  // decode + augmentation cost

  double bytes_per_sample() const {
    if (num_samples <= 0.0) throw std::logic_error("Dataset has no samples");
    return total_bytes / num_samples;
  }
};

// ImageNet-1k (ILSVRC 2012): 1.28 M JPEGs, 133 GB on disk (Table II).
// ~2.5 ms/sample of CPU for JPEG decode + random-resized-crop + normalize.
Dataset imagenet_1k();

// SQuAD 2.0: 45 MB of text (Table II); tokenization is trivially cheap and
// the dataset caches entirely after the first touch.
Dataset squad_v2();

}  // namespace stash::dnn
