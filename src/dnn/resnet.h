// ResNet generator with real ImageNet convolution shapes.
//
// Used both for the Table II models (ResNet18/50) and for the paper's
// micro-characterization (§VI-A): depth sweeps {18, 34, 50, 101, 152} and
// architecture ablations (removing batch normalization shrinks the number
// of gradient tensors; removing residual connections only drops the tiny
// downsample projections, which is why the paper sees minimal impact).
#pragma once

#include "dnn/model.h"

namespace stash::dnn {

struct ResNetOptions {
  bool batch_norm = true;  // emit BN layers (2 tensors per conv)
  bool residual = true;    // emit downsample projections for skip paths
};

// depth in {18, 34, 50, 101, 152}.
Model make_resnet(int depth, const ResNetOptions& options = {});

}  // namespace stash::dnn
