#include "dnn/profile_model.h"

#include <stdexcept>
#include <vector>

namespace stash::dnn {

Model make_profile_model(const ProfileSpec& spec) {
  if (spec.num_param_tensors < 1)
    throw std::invalid_argument("make_profile_model: need >= 1 tensor");
  if (spec.total_params <= 0.0)
    throw std::invalid_argument("make_profile_model: need positive params");

  const int n = spec.num_param_tensors;
  std::vector<double> weights(static_cast<std::size_t>(n), 1.0);
  switch (spec.profile) {
    case ParamProfile::kUniform:
      break;
    case ParamProfile::kPyramid:
      // Quadratic growth towards the output, the usual convnet shape.
      for (int i = 0; i < n; ++i) {
        double x = static_cast<double>(i + 1);
        weights[static_cast<std::size_t>(i)] = x * x;
      }
      break;
    case ParamProfile::kFcHeavy: {
      // Last three tensors carry 85% of the parameters.
      int fc = n >= 3 ? 3 : n;
      double trunk_share = n > fc ? 0.15 / (n - fc) : 0.0;
      for (int i = 0; i < n - fc; ++i) weights[static_cast<std::size_t>(i)] = trunk_share;
      for (int i = n - fc; i < n; ++i)
        weights[static_cast<std::size_t>(i)] = 0.85 / fc;
      break;
    }
  }

  double weight_sum = 0.0;
  for (double w : weights) weight_sum += w;

  std::vector<Layer> layers;
  layers.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    double share = weights[static_cast<std::size_t>(i)] / weight_sum;
    layers.push_back(Layer{
        spec.name + ".t" + std::to_string(i), LayerKind::kConv,
        spec.total_params * share, spec.fwd_flops_per_sample / n,
        spec.activation_bytes_per_sample / n});
  }
  return Model(spec.name, std::move(layers), spec.input_tensor_bytes);
}

}  // namespace stash::dnn
