// The paper's model zoo (Table II) plus dataset bindings.
#pragma once

#include <string>
#include <vector>

#include "dnn/dataset.h"
#include "dnn/model.h"

namespace stash::dnn {

// Table II rows.
Model make_alexnet();       // 9.63 M gradients (paper's variant)
Model make_mobilenet_v2();  // 3.4 M
Model make_squeezenet();    // 0.73 M
Model make_shufflenet();    // 1.8 M
Model make_resnet18();      // 11.18 M (real generator, ~11.7 M)
Model make_resnet50();      // 23.59 M (real generator, ~25.6 M)
Model make_vgg11();         // 132.8 M (real generator, ~132.9 M)
// BERT-large declared in bert.h (345 M, generator ~336 M).

// Classification of Table II ("Small" vs "Large" vision models).
std::vector<std::string> small_vision_models();
std::vector<std::string> large_vision_models();

// Builds any Table II model by its zoo name (as listed above plus
// "bert-large"); throws std::invalid_argument for unknown names.
Model make_zoo_model(const std::string& name);

// Paper-reported gradient counts (millions of parameters) for Table II
// validation and reporting.
double paper_gradient_millions(const std::string& name);

// The dataset each zoo model trains on (ImageNet-1k or SQuAD 2.0).
Dataset dataset_for(const std::string& model_name);

}  // namespace stash::dnn
