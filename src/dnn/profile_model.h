// Profile-based model generator.
//
// For zoo models whose exact per-layer shapes are immaterial to stall
// behaviour (AlexNet, MobileNet-v2, SqueezeNet, ShuffleNet), what matters
// is (a) the total gradient volume, (b) the number of gradient tensors and
// (c) roughly how parameters are distributed across them. This generator
// produces a model matching the paper's Table II parameter totals exactly,
// with a realistic tensor count and distribution shape.
#pragma once

#include <string>

#include "dnn/model.h"

namespace stash::dnn {

enum class ParamProfile {
  kUniform,   // parameters spread evenly
  kPyramid,   // later layers heavier (typical convnet trunk)
  kFcHeavy,   // bulk of parameters in the last few FC layers (AlexNet/VGG)
};

struct ProfileSpec {
  std::string name;
  double total_params = 0.0;       // Table II value
  int num_param_tensors = 0;       // ~len(model.parameters()) in PyTorch
  double fwd_flops_per_sample = 0.0;
  double activation_bytes_per_sample = 0.0;
  double input_tensor_bytes = 3.0 * 224 * 224 * 4;
  ParamProfile profile = ParamProfile::kPyramid;
};

Model make_profile_model(const ProfileSpec& spec);

}  // namespace stash::dnn
