// Layer description for the DNN model zoo.
//
// Training simulation needs, per layer: how many trainable parameters it
// carries (gradient volume for all-reduce), how much compute it costs
// (forward FLOPs; backward is 2x), and how large its activations are (GPU
// memory). Parameter-free layers (pooling, activation) may be omitted by
// generators since they affect none of these materially.
#pragma once

#include <string>

namespace stash::dnn {

enum class LayerKind {
  kConv,
  kBatchNorm,
  kFullyConnected,
  kEmbedding,
  kAttention,
  kLayerNorm,
  kOther,
};

struct Layer {
  std::string name;
  LayerKind kind = LayerKind::kOther;
  double params = 0.0;                      // trainable parameter count
  double fwd_flops_per_sample = 0.0;        // forward FLOPs for one sample
  // Training-memory footprint of this layer's stored state per sample
  // (output plus saved intermediates, dropout masks, workspaces).
  double activation_bytes_per_sample = 0.0;
  // Size of the single output tensor per sample — what actually crosses a
  // pipeline-parallel stage boundary. Negative means "same as the memory
  // footprint" (true for convnets, whose generators store one tensor per
  // layer; transformers inflate memory by a stored-intermediates factor).
  double output_bytes_per_sample = -1.0;

  bool has_params() const { return params > 0.0; }
  // fp32 gradients: 4 bytes per parameter.
  double gradient_bytes() const { return params * 4.0; }
  // Inter-stage wire volume per sample if a pipeline cut lands after this
  // layer.
  double boundary_bytes() const {
    return output_bytes_per_sample >= 0.0 ? output_bytes_per_sample
                                          : activation_bytes_per_sample;
  }
};

}  // namespace stash::dnn
