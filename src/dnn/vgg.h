// VGG generator with the real torchvision configurations.
//
// VGG is the paper's canonical "few layers, huge gradients" model: most of
// its 133 M parameters sit in three fully-connected layers, so it exercises
// the bandwidth-bound regime of the §VI analytic model.
#pragma once

#include "dnn/model.h"

namespace stash::dnn {

// depth in {11, 13, 16, 19} (configurations A/B/D/E, with batch norm
// disabled to match the paper's use of the plain variants).
Model make_vgg(int depth);

}  // namespace stash::dnn
