#include "dnn/zoo.h"

#include <stdexcept>

#include "dnn/bert.h"
#include "dnn/profile_model.h"
#include "dnn/resnet.h"
#include "dnn/vgg.h"
#include "util/units.h"

namespace stash::dnn {

using util::gb;
using util::gflop;
using util::mb;
using util::mib;

Dataset imagenet_1k() {
  // ~1.2 ms/sample of CPU for JPEG decode + random-resized-crop + normalize
  // (SIMD-accelerated PIL-era loaders); with 3 workers per GPU this keeps
  // prep stalls negligible on AWS vCPU counts, matching the paper.
  return Dataset{"imagenet-1k", 1'281'167.0, gb(133), 1.2e-3};
}

Dataset squad_v2() {
  return Dataset{"squad-2.0", 130'319.0, mb(45), 0.05e-3};
}

Model make_alexnet() {
  // The paper's AlexNet variant reports 9.63 M gradients; AlexNet's bulk
  // sits in its classifier FC layers.
  return make_profile_model(ProfileSpec{"alexnet", 9.63e6, 16, gflop(1.4), mib(6),
                                        3.0 * 224 * 224 * 4, ParamProfile::kFcHeavy});
}

Model make_mobilenet_v2() {
  return make_profile_model(ProfileSpec{"mobilenet-v2", 3.4e6, 158, gflop(0.6),
                                        mib(74), 3.0 * 224 * 224 * 4,
                                        ParamProfile::kPyramid});
}

Model make_squeezenet() {
  return make_profile_model(ProfileSpec{"squeezenet", 0.73e6, 52, gflop(0.7),
                                        mib(30), 3.0 * 224 * 224 * 4,
                                        ParamProfile::kPyramid});
}

Model make_shufflenet() {
  return make_profile_model(ProfileSpec{"shufflenet", 1.8e6, 170, gflop(0.3),
                                        mib(12), 3.0 * 224 * 224 * 4,
                                        ParamProfile::kPyramid});
}

Model make_resnet18() { return make_resnet(18); }
Model make_resnet50() { return make_resnet(50); }
Model make_vgg11() { return make_vgg(11); }

std::vector<std::string> small_vision_models() {
  return {"alexnet", "mobilenet-v2", "squeezenet", "shufflenet", "resnet18"};
}

std::vector<std::string> large_vision_models() { return {"resnet50", "vgg11"}; }

Model make_zoo_model(const std::string& name) {
  if (name == "alexnet") return make_alexnet();
  if (name == "mobilenet-v2") return make_mobilenet_v2();
  if (name == "squeezenet") return make_squeezenet();
  if (name == "shufflenet") return make_shufflenet();
  if (name == "resnet18") return make_resnet18();
  if (name == "resnet50") return make_resnet50();
  if (name == "vgg11") return make_vgg11();
  if (name == "bert-large") return make_bert_large();
  throw std::invalid_argument("unknown zoo model: " + name);
}

double paper_gradient_millions(const std::string& name) {
  if (name == "alexnet") return 9.63;
  if (name == "mobilenet-v2") return 3.4;
  if (name == "squeezenet") return 0.73;
  if (name == "shufflenet") return 1.8;
  if (name == "resnet18") return 11.18;
  if (name == "resnet50") return 23.59;
  if (name == "vgg11") return 132.8;
  if (name == "bert-large") return 345.0;
  throw std::invalid_argument("unknown zoo model: " + name);
}

Dataset dataset_for(const std::string& model_name) {
  if (model_name.rfind("bert", 0) == 0) return squad_v2();
  return imagenet_1k();
}

}  // namespace stash::dnn
