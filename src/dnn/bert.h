// BERT transformer generator (paper Table II uses BERT-large on SQuAD 2.0).
#pragma once

#include "dnn/model.h"

namespace stash::dnn {

struct BertConfig {
  int hidden = 1024;        // BERT-large
  int num_layers = 24;
  int intermediate = 4096;
  int vocab = 30522;
  int max_position = 512;
  int seq_len = 384;        // SQuAD fine-tuning sequence length
};

Model make_bert(const BertConfig& config = {});
// Convenience: BERT-large at SQuAD settings.
Model make_bert_large();

}  // namespace stash::dnn
