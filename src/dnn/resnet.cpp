#include "dnn/resnet.h"

#include <array>
#include <stdexcept>
#include <string>
#include <vector>

namespace stash::dnn {

namespace {

struct Builder {
  std::vector<Layer> layers;
  bool batch_norm;

  // Training stores more than the labelled outputs (pre-activation copies,
  // ReLU masks, autograd workspaces); the factor calibrates footprints so
  // ResNet18 at batch 128 fills ~60 % of a K80 and ResNet152 at batch 32 still fits a 16 GiB V100 (the paper runs both), matching measured practice.
  static constexpr double kStoredIntermediates = 2.5;

  // Adds a conv (no bias, torchvision style) and its BN if enabled.
  void conv(const std::string& name, int k, int c_in, int c_out, int out_hw) {
    double spatial = static_cast<double>(out_hw) * out_hw;
    double weight = static_cast<double>(k) * k * c_in * c_out;
    double out_bytes = spatial * c_out * 4.0;  // fp32 output tensor
    Layer l{name, LayerKind::kConv, weight, 2.0 * weight * spatial,
            out_bytes * kStoredIntermediates};
    l.output_bytes_per_sample = out_bytes;
    layers.push_back(l);
    if (batch_norm) {
      Layer bn{name + ".bn", LayerKind::kBatchNorm, 2.0 * c_out,
               4.0 * spatial * c_out,  // scale+shift pass
               out_bytes * kStoredIntermediates};
      bn.output_bytes_per_sample = out_bytes;
      layers.push_back(bn);
    }
  }

  void fc(const std::string& name, int in, int out) {
    double weight = static_cast<double>(in) * out + out;  // bias
    Layer l{name, LayerKind::kFullyConnected, weight, 2.0 * weight, out * 4.0};
    l.output_bytes_per_sample = out * 4.0;
    layers.push_back(l);
  }
};

}  // namespace

Model make_resnet(int depth, const ResNetOptions& options) {
  struct StagePlan {
    std::array<int, 4> blocks;
    bool bottleneck;
  };
  StagePlan plan{};
  switch (depth) {
    case 18:  plan = {{2, 2, 2, 2}, false}; break;
    case 34:  plan = {{3, 4, 6, 3}, false}; break;
    case 50:  plan = {{3, 4, 6, 3}, true}; break;
    case 101: plan = {{3, 4, 23, 3}, true}; break;
    case 152: plan = {{3, 8, 36, 3}, true}; break;
    default:
      throw std::invalid_argument("make_resnet: depth must be one of 18/34/50/101/152");
  }

  Builder b{{}, options.batch_norm};
  // Stem: 7x7/2 conv 3->64 at 112x112, then 3x3/2 maxpool to 56x56.
  b.conv("stem", 7, 3, 64, 112);

  const int expansion = plan.bottleneck ? 4 : 1;
  const std::array<int, 4> widths{64, 128, 256, 512};
  const std::array<int, 4> spatial{56, 28, 14, 7};
  int c_in = 64;

  for (int stage = 0; stage < 4; ++stage) {
    int width = widths[static_cast<std::size_t>(stage)];
    int hw = spatial[static_cast<std::size_t>(stage)];
    int c_out = width * expansion;
    for (int block = 0; block < plan.blocks[static_cast<std::size_t>(stage)]; ++block) {
      std::string base = "layer" + std::to_string(stage + 1) + "." + std::to_string(block);
      if (plan.bottleneck) {
        b.conv(base + ".conv1", 1, c_in, width, hw);
        b.conv(base + ".conv2", 3, width, width, hw);
        b.conv(base + ".conv3", 1, width, c_out, hw);
      } else {
        b.conv(base + ".conv1", 3, c_in, width, hw);
        b.conv(base + ".conv2", 3, width, width, hw);
      }
      // First block of a stage changes shape; the skip path needs a 1x1
      // projection — which exists only if residual connections do.
      if (block == 0 && options.residual && c_in != c_out)
        b.conv(base + ".downsample", 1, c_in, c_out, hw);
      c_in = c_out;
    }
  }

  b.fc("fc", 512 * expansion, 1000);

  // Decoded input tensor: 3 x 224 x 224 fp32.
  double input_bytes = 3.0 * 224 * 224 * 4;
  std::string name = "resnet" + std::to_string(depth);
  if (!options.batch_norm) name += "-nobn";
  if (!options.residual) name += "-nores";
  return Model(name, std::move(b.layers), input_bytes);
}

}  // namespace stash::dnn
