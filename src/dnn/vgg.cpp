#include "dnn/vgg.h"

#include <stdexcept>
#include <string>
#include <vector>

namespace stash::dnn {

Model make_vgg(int depth) {
  // -1 encodes a max-pool (halves the spatial size, no parameters).
  std::vector<int> cfg;
  switch (depth) {
    case 11:
      cfg = {64, -1, 128, -1, 256, 256, -1, 512, 512, -1, 512, 512, -1};
      break;
    case 13:
      cfg = {64, 64, -1, 128, 128, -1, 256, 256, -1, 512, 512, -1, 512, 512, -1};
      break;
    case 16:
      cfg = {64, 64, -1, 128, 128, -1, 256, 256, 256, -1,
             512, 512, 512, -1, 512, 512, 512, -1};
      break;
    case 19:
      cfg = {64, 64, -1, 128, 128, -1, 256, 256, 256, 256, -1,
             512, 512, 512, 512, -1, 512, 512, 512, 512, -1};
      break;
    default:
      throw std::invalid_argument("make_vgg: depth must be one of 11/13/16/19");
  }

  // Stored-intermediates multiplier on training memory (see resnet.cpp).
  constexpr double kStoredIntermediates = 2.5;

  std::vector<Layer> layers;
  int c_in = 3;
  int hw = 224;
  int conv_idx = 0;
  for (int c : cfg) {
    if (c < 0) {
      hw /= 2;
      continue;
    }
    double spatial = static_cast<double>(hw) * hw;
    double weight = 9.0 * c_in * c + c;  // 3x3 conv with bias
    double out_bytes = spatial * c * 4.0;
    Layer l{"conv" + std::to_string(conv_idx++), LayerKind::kConv, weight,
            2.0 * (9.0 * c_in * c) * spatial, out_bytes * kStoredIntermediates};
    l.output_bytes_per_sample = out_bytes;
    layers.push_back(l);
    c_in = c;
  }

  auto fc = [&](const std::string& name, int in, int out) {
    double weight = static_cast<double>(in) * out + out;
    Layer l{name, LayerKind::kFullyConnected, weight, 2.0 * weight, out * 4.0};
    l.output_bytes_per_sample = out * 4.0;
    layers.push_back(l);
  };
  fc("fc1", 512 * 7 * 7, 4096);
  fc("fc2", 4096, 4096);
  fc("fc3", 4096, 1000);

  return Model("vgg" + std::to_string(depth), std::move(layers), 3.0 * 224 * 224 * 4);
}

}  // namespace stash::dnn
