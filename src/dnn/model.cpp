#include "dnn/model.h"

#include <stdexcept>

#include "util/units.h"

namespace stash::dnn {

Model::Model(std::string name, std::vector<Layer> layers, double input_tensor_bytes)
    : name_(std::move(name)),
      layers_(std::move(layers)),
      input_tensor_bytes_(input_tensor_bytes) {
  if (layers_.empty()) throw std::invalid_argument("Model needs at least one layer");
  for (const Layer& l : layers_) {
    total_params_ += l.params;
    fwd_flops_ += l.fwd_flops_per_sample;
    activation_bytes_ += l.activation_bytes_per_sample;
    if (l.has_params()) ++num_param_tensors_;
  }
  if (total_params_ <= 0.0) throw std::invalid_argument("Model has no parameters");
}

std::vector<double> Model::gradient_tensors_backward() const {
  std::vector<double> grads;
  grads.reserve(num_param_tensors_);
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    if (it->has_params()) grads.push_back(it->gradient_bytes());
  return grads;
}

std::vector<Model::BackwardStep> Model::backward_steps() const {
  std::vector<BackwardStep> steps;
  steps.reserve(num_param_tensors_);
  double pending_flops = 0.0;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    pending_flops += 2.0 * it->fwd_flops_per_sample;
    if (it->has_params()) {
      steps.push_back(BackwardStep{it->gradient_bytes(), pending_flops});
      pending_flops = 0.0;
    }
  }
  // Parameter-free layers at the very input end bill to the last step.
  if (pending_flops > 0.0 && !steps.empty()) steps.back().flops_per_sample += pending_flops;
  return steps;
}

double Model::train_memory_bytes(int batch_size) const {
  if (batch_size < 1) throw std::invalid_argument("batch_size must be >= 1");
  // fp32 weights + gradients + SGD momentum = 12 bytes per parameter.
  double param_state = total_params_ * 12.0;
  double activations = activation_bytes_ * static_cast<double>(batch_size);
  // CUDA context + framework workspace reserve.
  double reserve = util::mib(600);
  return param_state + activations + reserve;
}

}  // namespace stash::dnn
