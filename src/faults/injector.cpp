#include "faults/injector.h"

#include <algorithm>

namespace stash::faults {

namespace {
// Links need positive capacity; a "zeroed" flap parks flows at a rate that
// moves no meaningful data over any simulated window.
constexpr double kFlapFloorBytesPerS = 1e-3;
}  // namespace

FaultInjector::FaultInjector(sim::Simulator& sim, hw::FlowNetwork& net,
                             hw::Cluster& cluster, const FaultPlan& plan)
    : sim_(sim), net_(net), cluster_(cluster), plan_(plan), state_(plan) {}

FaultInjector::~FaultInjector() { disarm(); }

std::vector<hw::Link*> FaultInjector::targets_for(const FaultEvent& e) const {
  std::vector<hw::Link*> out;
  if (e.kind == FaultKind::kLinkDegrade) {
    if (e.machine < 0) {
      if (cluster_.fabric() != nullptr) out.push_back(cluster_.fabric());
    } else if (e.machine < static_cast<int>(cluster_.num_machines())) {
      const hw::Machine& m = cluster_.machine(e.machine);
      if (m.nic_tx() != nullptr) out.push_back(m.nic_tx());
      if (m.nic_rx() != nullptr) out.push_back(m.nic_rx());
    }
  } else if (e.kind == FaultKind::kSlowDisk) {
    if (e.machine >= 0 && e.machine < static_cast<int>(cluster_.num_machines()))
      out.push_back(cluster_.machine(e.machine).storage().link());
  }
  return out;
}

void FaultInjector::set_effective(hw::Link* link) {
  const LinkShare& s = shares_.at(link);
  net_.update_capacity(link, std::max(kFlapFloorBytesPerS, s.base * s.factor));
}

void FaultInjector::apply(hw::Link* link, double factor) {
  shares_[link].factor *= std::max(factor, 0.0);
  set_effective(link);
}

void FaultInjector::restore(hw::Link* link, double factor) {
  auto it = shares_.find(link);
  if (it == shares_.end()) return;
  double f = std::max(factor, 0.0);
  if (f > 0.0)
    it->second.factor /= f;
  else
    it->second.factor = 1.0;  // flap windows never nest in practice
  // Guard drift: a link with no remaining windows is exactly at base.
  if (it->second.factor > 0.999999 && it->second.factor < 1.000001)
    it->second.factor = 1.0;
  set_effective(link);
}

void FaultInjector::arm() {
  if (armed_) return;
  plan_.validate();
  armed_ = true;
  const double now = sim_.now();
  for (const FaultEvent& e : plan_.events) {
    if (e.kind != FaultKind::kLinkDegrade && e.kind != FaultKind::kSlowDisk)
      continue;  // stragglers/crashes are queried from FaultState
    if (e.start_s < now) continue;
    std::vector<hw::Link*> links = targets_for(e);
    if (links.empty()) continue;
    for (hw::Link* l : links)
      if (!shares_.contains(l)) shares_.emplace(l, LinkShare{l->capacity()});
    double factor = e.factor;
    scheduled_.push_back(sim_.schedule_at(e.start_s, [this, links, factor] {
      for (hw::Link* l : links) apply(l, factor);
    }));
    scheduled_.push_back(sim_.schedule_at(e.end_s(), [this, links, factor] {
      for (hw::Link* l : links) restore(l, factor);
    }));
  }
}

void FaultInjector::disarm() {
  if (!armed_) return;
  for (sim::EventId id : scheduled_) sim_.cancel(id);
  scheduled_.clear();
  for (auto& [link, share] : shares_) {
    share.factor = 1.0;
    net_.update_capacity(link, share.base);
  }
  armed_ = false;
}

}  // namespace stash::faults
