// Drives a FaultPlan's capacity faults through the Simulator event queue.
//
// arm() schedules one start and one end event per degradation window. At
// the start of a window the target links' capacities are rescaled through
// FlowNetwork::update_capacity (settling in-flight flows at their old
// rates); at the end the original share is restored. Overlapping windows on
// the same link compose multiplicatively. A full flap (factor 0) clamps to
// a ~zero floor because links must keep positive capacity; flows across a
// flapped link effectively freeze until the window closes.
//
// disarm() cancels every not-yet-fired event and restores all base
// capacities, so an injector can be torn down mid-plan (e.g. a run_until
// horizon ends inside a window) without leaking degraded links. The
// destructor disarms automatically.
#pragma once

#include <unordered_map>
#include <vector>

#include "faults/fault_plan.h"
#include "hw/flow_network.h"
#include "hw/topology.h"
#include "sim/simulator.h"

namespace stash::faults {

class FaultInjector {
 public:
  // Targets events at `cluster`'s links. Events naming machines outside the
  // cluster are ignored (a plan written for a 2-machine spec degrades
  // gracefully on the profiler's 1-machine steps).
  FaultInjector(sim::Simulator& sim, hw::FlowNetwork& net, hw::Cluster& cluster,
                const FaultPlan& plan);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedules the plan's capacity events; idempotent. Events whose start is
  // already in the past (relative to sim.now()) are dropped.
  void arm();
  // Cancels pending events and restores every touched link's base capacity.
  void disarm();

  const FaultState& state() const { return state_; }
  bool armed() const { return armed_; }
  // Events scheduled by arm() and not yet released by disarm() (fired
  // events keep their slots until disarm clears the list).
  std::size_t scheduled_events() const { return scheduled_.size(); }

 private:
  void apply(hw::Link* link, double factor);   // enter a window
  void restore(hw::Link* link, double factor); // leave a window
  void set_effective(hw::Link* link);
  std::vector<hw::Link*> targets_for(const FaultEvent& e) const;

  sim::Simulator& sim_;
  hw::FlowNetwork& net_;
  hw::Cluster& cluster_;
  FaultPlan plan_;
  FaultState state_;

  struct LinkShare {
    double base;           // capacity at arm() time
    double factor = 1.0;   // product of active window factors
  };
  std::unordered_map<hw::Link*, LinkShare> shares_;
  std::vector<sim::EventId> scheduled_;
  bool armed_ = false;
};

}  // namespace stash::faults
