#include "faults/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "util/args.h"

namespace stash::faults {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kGpuStraggler:
      return "straggler";
    case FaultKind::kLinkDegrade:
      return "link";
    case FaultKind::kSlowDisk:
      return "disk";
    case FaultKind::kCrash:
      return "crash";
  }
  return "?";
}

void FaultPlan::validate() const {
  for (const FaultEvent& e : events) {
    if (!(e.start_s >= 0.0) || !std::isfinite(e.start_s))
      throw std::invalid_argument("FaultPlan: event start must be finite and >= 0");
    switch (e.kind) {
      case FaultKind::kGpuStraggler:
        if (e.worker < 0)
          throw std::invalid_argument("FaultPlan: straggler needs a worker index");
        if (!(e.duration_s > 0.0))
          throw std::invalid_argument("FaultPlan: straggler window must be positive");
        if (!(e.factor > 1.0) || !std::isfinite(e.factor))
          throw std::invalid_argument("FaultPlan: straggler factor must be > 1");
        break;
      case FaultKind::kLinkDegrade:
      case FaultKind::kSlowDisk:
        if (e.kind == FaultKind::kSlowDisk && e.machine < 0)
          throw std::invalid_argument("FaultPlan: disk fault needs a machine index");
        if (!(e.duration_s > 0.0))
          throw std::invalid_argument("FaultPlan: degrade window must be positive");
        if (e.factor < 0.0 || e.factor > 1.0 || !std::isfinite(e.factor))
          throw std::invalid_argument(
              "FaultPlan: bandwidth factor must be in [0, 1]");
        break;
      case FaultKind::kCrash:
        if (e.machine < 0)
          throw std::invalid_argument("FaultPlan: crash needs a machine index");
        if (!(e.reprovision_s >= 0.0) || !std::isfinite(e.reprovision_s))
          throw std::invalid_argument("FaultPlan: reprovision must be >= 0");
        break;
    }
  }
}

namespace {

// Prints a double without trailing zeros ("2", "2.5", "0.25").
std::string num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

double parse_num(const std::string& s, const char* what) {
  std::optional<double> v = util::parse_double(s);
  if (!v)
    throw std::invalid_argument(std::string("FaultPlan: bad number for ") + what +
                                ": '" + s + "'");
  return *v;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t from = 0;
  while (from <= s.size()) {
    std::size_t at = s.find(sep, from);
    if (at == std::string::npos) {
      out.push_back(s.substr(from));
      break;
    }
    out.push_back(s.substr(from, at - from));
    from = at + 1;
  }
  return out;
}

FaultEvent parse_event(const std::string& text) {
  auto fields = split(text, ':');
  auto head = split(fields[0], '@');
  if (head.size() != 2)
    throw std::invalid_argument("FaultPlan: event needs kind@time: '" + text + "'");

  FaultEvent e;
  const std::string& kind = head[0];
  if (kind == "straggler")
    e.kind = FaultKind::kGpuStraggler;
  else if (kind == "link")
    e.kind = FaultKind::kLinkDegrade;
  else if (kind == "disk")
    e.kind = FaultKind::kSlowDisk;
  else if (kind == "crash")
    e.kind = FaultKind::kCrash;
  else
    throw std::invalid_argument("FaultPlan: unknown fault kind '" + kind + "'");

  auto window = split(head[1], '+');
  e.start_s = parse_num(window[0], "start");
  if (window.size() == 2) e.duration_s = parse_num(window[1], "duration");

  for (std::size_t i = 1; i < fields.size(); ++i) {
    const std::string& f = fields[i];
    if (f.empty()) throw std::invalid_argument("FaultPlan: empty field in '" + text + "'");
    if (f == "fabric")
      e.machine = -1;
    else if (f[0] == 'm')
      e.machine = static_cast<int>(parse_num(f.substr(1), "machine"));
    else if (f[0] == 'w')
      e.worker = static_cast<int>(parse_num(f.substr(1), "worker"));
    else if (f[0] == 'x')
      e.factor = parse_num(f.substr(1), "factor");
    else if (f[0] == 'r')
      e.reprovision_s = parse_num(f.substr(1), "reprovision");
    else
      throw std::invalid_argument("FaultPlan: unknown field '" + f + "'");
  }
  return e;
}

}  // namespace

std::string FaultPlan::to_spec() const {
  std::string out;
  for (const FaultEvent& e : events) {
    if (!out.empty()) out += ';';
    out += to_string(e.kind);
    out += '@' + num(e.start_s);
    if (e.kind != FaultKind::kCrash) out += '+' + num(e.duration_s);
    if (e.kind == FaultKind::kGpuStraggler)
      out += ":w" + std::to_string(e.worker);
    else
      out += e.machine < 0 ? std::string(":fabric")
                           : ":m" + std::to_string(e.machine);
    if (e.kind == FaultKind::kCrash)
      out += ":r" + num(e.reprovision_s);
    else
      out += ":x" + num(e.factor);
  }
  return out;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& part : split(spec, ';')) {
    if (part.empty()) continue;
    plan.events.push_back(parse_event(part));
  }
  plan.validate();
  return plan;
}

FaultPlan make_revocation_plan(double horizon_s, int machines,
                               double interruptions_per_hour,
                               double reprovision_s, util::Rng& rng) {
  if (horizon_s < 0.0) throw std::invalid_argument("revocation plan: negative horizon");
  if (machines < 1) throw std::invalid_argument("revocation plan: machines < 1");
  if (interruptions_per_hour < 0.0)
    throw std::invalid_argument("revocation plan: negative interruption rate");

  FaultPlan plan;
  if (interruptions_per_hour <= 0.0) return plan;
  double mean_gap = 3600.0 / interruptions_per_hour;
  double t = 0.0;
  int victim = 0;
  while (true) {
    t += rng.exponential(mean_gap);
    if (t >= horizon_s) break;
    FaultEvent e;
    e.kind = FaultKind::kCrash;
    e.start_s = t;
    e.machine = victim;
    e.reprovision_s = reprovision_s;
    plan.events.push_back(e);
    victim = (victim + 1) % machines;
    // The victim is down until its replacement arrives; the next draw starts
    // from the recovery point so back-to-back revocations stay physical.
    t += reprovision_s;
  }
  return plan;
}

FaultState::FaultState(const FaultPlan& plan) {
  plan.validate();
  for (const FaultEvent& e : plan.events) {
    switch (e.kind) {
      case FaultKind::kGpuStraggler:
        stragglers_.push_back(Window{e.worker, e.start_s, e.end_s(), e.factor});
        break;
      case FaultKind::kCrash:
        crashes_.push_back(Crash{e.machine, e.start_s, e.start_s + e.reprovision_s});
        break;
      default:
        break;  // capacity faults live in the FaultInjector
    }
  }
  std::sort(crashes_.begin(), crashes_.end(),
            [](const Crash& a, const Crash& b) { return a.start < b.start; });
}

double FaultState::compute_scale(int worker, double now) const {
  double scale = 1.0;
  for (const Window& w : stragglers_)
    if (w.target == worker && now >= w.start && now < w.end) scale *= w.factor;
  return scale;
}

bool FaultState::crashed(int machine, double now) const {
  for (const Crash& c : crashes_)
    if (c.machine == machine && now >= c.start && now < c.repair) return true;
  return false;
}

double FaultState::repair_time(int machine, double now) const {
  double latest = now;
  for (const Crash& c : crashes_)
    if (c.machine == machine && now >= c.start && now < c.repair)
      latest = std::max(latest, c.repair);
  return latest;
}

double FaultState::next_crash_after(double now) const {
  double best = std::numeric_limits<double>::infinity();
  for (const Crash& c : crashes_)
    if (c.start > now) best = std::min(best, c.start);
  return best;
}

}  // namespace stash::faults
