// Deterministic fault schedules for resilience simulation.
//
// A FaultPlan is a serializable list of fault events — GPU straggler
// windows, link degradation/flap windows, slow-disk windows, and worker
// crashes with a reprovision delay. Plans are plain data: they can be
// written by hand, parsed from a compact spec string (the CLI's
// --faults=...), or sampled from a Poisson revocation process with an
// explicit seed. The same plan injected into the same simulation always
// produces bit-identical results.
//
// Two consumers exist:
//   * FaultInjector (injector.h) drives capacity-changing events through
//     the Simulator queue and the FlowNetwork;
//   * FaultState is a pure time-indexed view of the plan that the Trainer
//     queries per iteration (compute slowdowns, crash/repair status) — no
//     mutation, so queries never perturb event ordering.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/rng.h"

namespace stash::faults {

enum class FaultKind {
  kGpuStraggler,  // worker's compute slowed by `factor` over a window
  kLinkDegrade,   // machine NIC (or fabric) bandwidth scaled by `factor`
  kSlowDisk,      // machine SSD read bandwidth scaled by `factor`
  kCrash,         // machine revoked; replacement after `reprovision_s`
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kGpuStraggler;
  double start_s = 0.0;
  double duration_s = 0.0;  // window length; unused for kCrash
  // Target: machine index for kLinkDegrade/kSlowDisk/kCrash (-1 selects the
  // inter-machine fabric for kLinkDegrade); global worker index for
  // kGpuStraggler.
  int machine = -1;
  int worker = -1;
  // kGpuStraggler: compute slowdown (> 1, e.g. 2.0 = half speed).
  // kLinkDegrade / kSlowDisk: bandwidth multiplier in [0, 1]; 0 models a
  // full flap (clamped to a ~zero floor, since links need positive capacity).
  double factor = 1.0;
  // kCrash: delay until a replacement machine is usable again.
  double reprovision_s = 60.0;

  double end_s() const { return start_s + duration_s; }
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  // Throws std::invalid_argument on malformed events (negative times,
  // straggler factor <= 1, bandwidth factor outside [0, 1], missing target).
  void validate() const;

  // Compact spec round-trip, e.g.
  //   "straggler@2+5:w1:x2.5;link@4+3:m0:x0.1;disk@1+2:m0:x0.25;crash@6:m1:r30"
  // Times are seconds ("start" or "start+duration"); targets are wN (worker),
  // mN (machine) or "fabric"; xF is the factor, rS the reprovision delay.
  std::string to_spec() const;
  static FaultPlan parse(const std::string& spec);
};

// Samples machine revocations as a Poisson process over `horizon_s` — the
// event-driven counterpart of cloud::SpotConfig's closed-form model. Each
// interruption revokes one machine (round-robin over `machines`) and brings
// the replacement up after `reprovision_s`. Deterministic given `rng`.
FaultPlan make_revocation_plan(double horizon_s, int machines,
                               double interruptions_per_hour,
                               double reprovision_s, util::Rng& rng);

// Read-only time-indexed view of a plan for the Trainer: "is machine m dead
// at time t", "how slow is worker w's compute at time t". Values are pure
// functions of (plan, t), so the Trainer can sample them at any event time
// without registering callbacks.
class FaultState {
 public:
  FaultState() = default;
  explicit FaultState(const FaultPlan& plan);

  // Product of all straggler factors whose window covers `now` for this
  // worker (1.0 when healthy).
  double compute_scale(int worker, double now) const;

  // True while a crash of `machine` is in effect (revoked, replacement not
  // yet up) at `now`.
  bool crashed(int machine, double now) const;

  // Absolute time the replacement for the crash active at `now` becomes
  // usable; `now` itself when the machine is healthy.
  double repair_time(int machine, double now) const;

  // Earliest crash start strictly after `now` (+inf if none) — lets
  // replay drivers size their horizons.
  double next_crash_after(double now) const;

  bool has_crashes() const { return !crashes_.empty(); }

 private:
  struct Window {
    int target;
    double start, end;
    double factor;
  };
  struct Crash {
    int machine;
    double start, repair;
  };
  std::vector<Window> stragglers_;
  std::vector<Crash> crashes_;
};

}  // namespace stash::faults
