// Configuration and results for one simulated training run.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>
#include <stdexcept>
#include <vector>

#include <string>

#include "coll/collective.h"
#include "faults/fault_plan.h"
#include "hw/topology.h"
#include "obs/causal_log.h"
#include "telemetry/metrics.h"
#include "util/stats.h"
#include "util/trace.h"

namespace stash::ddl {

// Communication-reduction strategies (paper §III motivation: "several
// distributed DNN algorithms have been proposed to reduce communication
// overhead... however, there is a lack of a profiling tool to measure the
// real world efficacy"). Stash profiles these directly.
enum class CommReduction {
  kNone,      // full fp32 gradients every iteration (the paper's setup)
  kFp16,      // half-precision gradient exchange: 2 bytes/parameter
  kTopK,      // magnitude sparsification: send top-k values + indices
  kLocalSgd,  // synchronize full gradients every `local_steps` iterations
};

struct CommReductionConfig {
  CommReduction kind = CommReduction::kNone;
  double topk_ratio = 0.01;  // fraction of gradient entries sent under kTopK
  int local_steps = 4;       // synchronization period under kLocalSgd

  // Bytes actually exchanged per byte of fp32 gradient.
  double bytes_factor() const {
    switch (kind) {
      case CommReduction::kNone:
      case CommReduction::kLocalSgd:
        return 1.0;
      case CommReduction::kFp16:
        return 0.5;
      case CommReduction::kTopK:
        // value (4 B) + index (4 B) per surviving entry.
        return std::min(1.0, topk_ratio * 2.0);
    }
    return 1.0;
  }

  // Whether iteration `iter` (0-based) performs gradient synchronization.
  bool syncs_on(int iter) const {
    if (kind != CommReduction::kLocalSgd) return true;
    return (iter + 1) % std::max(1, local_steps) == 0;
  }
};

// Compute-speed heterogeneity: one straggling worker slows every barrier
// (failure-injection extension; the paper's clusters are homogeneous).
struct StragglerConfig {
  int worker_index = -1;  // -1 disables
  double slowdown = 1.0;  // >1: this worker's compute takes longer

  bool enabled() const { return worker_index >= 0 && slowdown > 1.0; }
  double scale_for(std::size_t worker) const {
    return enabled() && static_cast<int>(worker) == worker_index ? slowdown : 1.0;
  }
};

// How the trainer responds when a participant's machine crashes mid-run.
enum class RecoveryPolicy {
  // Wait for the replacement machine, then replay from the last periodic
  // checkpoint with the full worker set (the spot checkpoint-restart flow).
  kCheckpointRestart,
  // Drop the lost machine's workers, rebuild the (N-1)-worker ring, and
  // continue from the last committed iteration (elastic/shrinking DDP).
  kShrink,
};

// Fault tolerance knobs. Attaching a FaultState enables the fault-aware
// execution path: barriers gain a watchdog timeout, and crashes trigger the
// configured recovery instead of deadlocking the run.
struct FaultToleranceConfig {
  // Live fault view (not owned; must outlive the run). nullptr = healthy run.
  const faults::FaultState* faults = nullptr;
  RecoveryPolicy policy = RecoveryPolicy::kCheckpointRestart;
  // Watchdog on every iteration barrier: if the full party fails to arrive
  // within this window the survivors declare a fault and unwind.
  double barrier_timeout_s = 30.0;
  // Periodic checkpoint cadence (simulated seconds) and per-checkpoint write
  // stall, mirroring cloud::SpotConfig's fields; checkpoint-restart replays
  // from the last completed checkpoint.
  double checkpoint_interval_s = 900.0;
  double checkpoint_write_s = 20.0;
  // Smallest ring a kShrink recovery is allowed to leave behind. When a
  // crash would drop the surviving worker set below this floor (including
  // to zero — the fleet-below-k edge), the episode degrades to
  // checkpoint-restart with a warning instead of building an undefined
  // ring or aborting the run.
  int min_shrink_workers = 1;

  bool enabled() const { return faults != nullptr; }

  void validate() const {
    if (!enabled()) return;
    if (!(barrier_timeout_s > 0.0) || !std::isfinite(barrier_timeout_s))
      throw std::invalid_argument(
          "fault tolerance requires a finite barrier_timeout_s > 0 (a "
          "crashed worker is only detectable through the barrier watchdog)");
    if (!(checkpoint_interval_s > 0.0))
      throw std::invalid_argument("checkpoint_interval_s must be positive");
    if (checkpoint_write_s < 0.0)
      throw std::invalid_argument("checkpoint_write_s must be >= 0");
    if (min_shrink_workers < 1)
      throw std::invalid_argument("min_shrink_workers must be >= 1");
  }
};

// One recovery episode: what was lost, what it cost, how training resumed.
struct RecoveryRecord {
  double time_s = 0.0;       // when the fault was detected
  int at_iteration = 0;      // first iteration not committed when it hit
  RecoveryPolicy policy = RecoveryPolicy::kCheckpointRestart;
  int workers_before = 0;
  int workers_after = 0;
  double wait_seconds = 0.0;    // detection gap + reprovision wait
  int rework_iterations = 0;    // committed work discarded by the rollback
};

// One committed iteration as seen by the lead worker, published live
// through an IterationObserver the moment the end barrier releases. This is
// the streaming counterpart of TrainResult's run-level means: every field
// is a simulated-time quantity, so consumers (src/monitor/) stay
// deterministic by construction.
struct IterationSample {
  int iteration = 0;      // global iteration index
  int attempt = 0;        // recovery episode ordinal (0 on a healthy run)
  bool measured = false;  // post-warmup and not rework
  bool rework = false;    // replay of already-committed work after a fault
  double start_s = 0.0;   // iteration window in simulated seconds
  double end_s = 0.0;
  double total_s = 0.0;      // end_s - start_s
  double data_wait_s = 0.0;  // blocked on the device double buffer
  double compute_s = 0.0;    // forward + backward (+flush charges) + optimizer
  double comm_tail_s = 0.0;  // all-reduce time not hidden behind backward
  double barrier_s = 0.0;    // start + end barrier waits (pacing on peers)
  double checkpoint_s = 0.0; // periodic checkpoint write paid this iteration
  int workers = 0;           // party size of the current attempt
};

// Live per-iteration consumer. on_iteration fires from the lead worker's
// commit block in simulation order (iteration indices are monotone within
// an attempt and may rewind across attempts after checkpoint-restart);
// on_recovery fires once per fault-recovery episode. Implementations must
// not re-enter the trainer.
class IterationObserver {
 public:
  virtual ~IterationObserver() = default;
  virtual void on_iteration(const IterationSample& sample) = 0;
  virtual void on_recovery(const RecoveryRecord& rec) { (void)rec; }
};

struct TrainConfig {
  int per_gpu_batch = 32;
  // Simulated iteration window. Training is strictly periodic once the
  // pipeline fills, so a short window scaled to the epoch is exact — the
  // same single-epoch-representativeness the paper's methodology relies on.
  int iterations = 8;
  int warmup_iterations = 2;  // excluded from per-iteration statistics

  // DDP gradient bucketing: gradients are flushed to all-reduce when the
  // accumulated bucket reaches this size. <= 0 selects per-tensor flushes
  // (one all-reduce per layer, the granularity the paper's §VI analysis
  // assumes). 25 MiB mirrors PyTorch DDP's default.
  double bucket_bytes = 0.0;

  // Synthetic runs pre-populate GPU memory (Stash steps 1/2/5): no input
  // pipeline, no H2D copies. Real-data runs exercise SSD -> cache -> CPU
  // prep -> H2D (steps 3/4).
  bool synthetic_data = true;
  // Step 3 semantics: every read misses the DRAM cache.
  bool cold_cache = false;

  int loader_workers_per_gpu = 3;
  int prefetch_depth = 4;

  // Restrict training to these GPUs (Stash step 1 uses exactly one GPU of
  // a multi-GPU machine). Empty = every GPU in the cluster.
  std::vector<hw::GpuRef> use_gpus;

  coll::CollectiveConfig collective{};
  CommReductionConfig comm_reduction{};
  StragglerConfig straggler{};
  FaultToleranceConfig fault_tolerance{};

  // Fraction of compute time charged for the optimizer step.
  double optimizer_overhead = 0.02;

  // Throw if the model + batch does not fit in GPU memory.
  bool enforce_memory = true;

  // Optional timeline sink: every GPU worker (one span track per worker,
  // grouped by machine pid), each worker's H2D stage, the comm stream, and
  // the fault/recovery track record spans here (chrome://tracing format via
  // TraceRecorder::to_json). Not owned; must outlive the run.
  util::TraceRecorder* trace = nullptr;

  // Optional metrics sink: per-iteration phase histograms, per-GPU busy
  // seconds and utilization, pipeline occupancy, cache hit rate, collective
  // counters, per-link bytes/busy time, fault accounting, and simulator
  // internals all register here by hierarchical name. Not owned; must
  // outlive the run.
  telemetry::MetricsRegistry* metrics = nullptr;

  // Optional causal-edge sink: every coroutine (loaders, H2D stages,
  // workers, collectives, fault recovery) records typed, linked edges here
  // for critical-path attribution (obs::analyze_critical_path). Not owned;
  // must outlive the run. One log per run — logs are not mergeable.
  obs::CausalLog* causal = nullptr;

  // Optional streaming sink: the lead worker publishes one IterationSample
  // per committed iteration (warmup and rework included, flagged) and one
  // callback per recovery episode. Not owned; must outlive the run. This is
  // the live tap src/monitor/ consumes.
  IterationObserver* observer = nullptr;

  void validate() const {
    if (per_gpu_batch < 1) throw std::invalid_argument("per_gpu_batch must be >= 1");
    if (iterations <= warmup_iterations)
      throw std::invalid_argument("iterations must exceed warmup_iterations");
    if (warmup_iterations < 0) throw std::invalid_argument("negative warmup");
    if (loader_workers_per_gpu < 1 || prefetch_depth < 1)
      throw std::invalid_argument("loader workers and prefetch depth must be >= 1");
    if (comm_reduction.kind == CommReduction::kTopK &&
        (comm_reduction.topk_ratio <= 0.0 || comm_reduction.topk_ratio > 1.0))
      throw std::invalid_argument("topk_ratio must be in (0, 1]");
    if (comm_reduction.kind == CommReduction::kLocalSgd &&
        comm_reduction.local_steps < 1)
      throw std::invalid_argument("local_steps must be >= 1");
    if (straggler.slowdown < 1.0)
      throw std::invalid_argument("straggler slowdown must be >= 1");
    fault_tolerance.validate();
  }
};

struct TrainResult {
  int measured_iterations = 0;
  double window_time = 0.0;    // simulated seconds across measured iterations
  double per_iteration = 0.0;  // mean measured iteration time

  // Diagnostics from the lead worker, mean per measured iteration.
  double data_wait = 0.0;   // blocked on the prefetch queue
  double h2d_time = 0.0;    // minibatch upload
  double compute_time = 0.0;
  double comm_tail = 0.0;   // all-reduce time not hidden behind backward

  int gpus_used = 0;

  // Fault accounting (the fifth stall category, alongside the paper's
  // interconnect/network/prep/fetch): simulated seconds lost to faults —
  // detection timeouts, reprovision waits, and replayed (rework)
  // iterations. Checkpoint writes are tracked separately because they are
  // paid even on fault-free runs.
  double fault_stall = 0.0;
  double checkpoint_seconds = 0.0;
  int checkpoints_written = 0;
  int gpus_at_end = 0;  // < gpus_used after a kShrink recovery
  std::vector<RecoveryRecord> recoveries;

  // Scales the measured window to a full epoch of `dataset_samples`.
  double epoch_time(double dataset_samples, int per_gpu_batch) const {
    if (gpus_used < 1 || per_gpu_batch < 1)
      throw std::logic_error("epoch_time on empty result");
    double global_batch = static_cast<double>(per_gpu_batch) * gpus_used;
    double iters = dataset_samples / global_batch;
    return per_iteration * iters;
  }
};

}  // namespace stash::ddl
