// Pipeline-parallel training (GPipe-style), the paper's declared future
// work: "Large DNN models often do not fit on a single GPU's memory,
// thereby forcing users to employ techniques such as model and hybrid
// parallelism... Our profiling tool currently supports only data
// parallelism" (§IV-A).
//
// The model's layers are partitioned into contiguous stages balanced by
// forward FLOPs; each stage is pinned to one GPU of the cluster (in ring
// order). A mini-batch is split into micro-batches that flow through the
// stages: all forwards, then all backwards (GPipe flush schedule). Stage
// boundaries exchange activations forward and activation-gradients
// backward as real flows over the topology — which is why pipelining
// tolerates slow NICs: only one cut tensor crosses the wire per
// micro-batch, not the full gradient set.
#pragma once

#include <vector>

#include "cloud/instance.h"
#include "coll/collective.h"
#include "dnn/model.h"
#include "hw/flow_network.h"
#include "hw/topology.h"
#include "sim/simulator.h"

namespace stash::ddl {

struct PipelineStage {
  std::size_t first_layer = 0;  // inclusive
  std::size_t last_layer = 0;   // inclusive
  double fwd_flops_per_sample = 0.0;
  double bwd_flops_per_sample = 0.0;
  double params = 0.0;
  // Activation tensor produced at this stage's output boundary (per
  // sample); the inter-stage transfer volume. Zero for the last stage.
  double boundary_activation_bytes = 0.0;
};

struct PipelinePlan {
  std::vector<PipelineStage> stages;

  std::size_t num_stages() const { return stages.size(); }
  // Largest / smallest stage forward-FLOPs ratio (1.0 = perfectly even).
  double imbalance() const;
};

// Greedy contiguous partition of the model's layers into `num_stages`
// stages balanced by forward FLOPs. Throws if the model has fewer layers
// than stages or num_stages < 1.
PipelinePlan partition_model(const dnn::Model& model, int num_stages);

// GPipe bubble fraction for S stages and M micro-batches: the share of an
// iteration the average stage spends idle, (S-1)/(M+S-1), for balanced
// stages and negligible transfers.
double gpipe_bubble_fraction(int stages, int micro_batches);

struct PipelineConfig {
  int micro_batches = 8;
  int mini_batch = 32;  // samples per iteration through one pipeline replica
  int iterations = 6;
  int warmup_iterations = 2;
  double optimizer_overhead = 0.02;
  // Per micro-batch, per boundary: kernel-launch/sync overhead.
  double stage_handoff_latency = 2e-5;

  // Hybrid parallelism: the cluster's GPUs are split into `replicas`
  // identical pipelines (data parallel across replicas, model parallel
  // within one). After the backward flush, stage s of every replica
  // ring-all-reduces its stage gradients with its peers. 1 = pure
  // pipeline.
  int replicas = 1;
  coll::CollectiveConfig collective{};

  // Optional causal-edge sink (not owned): stage compute, boundary
  // handoffs, bubbles, barriers and the hybrid all-reduce record typed
  // edges for critical-path attribution, mirroring ddl::Trainer.
  obs::CausalLog* causal = nullptr;

  void validate() const {
    if (micro_batches < 1) throw std::invalid_argument("micro_batches must be >= 1");
    if (mini_batch < micro_batches)
      throw std::invalid_argument("mini_batch must be >= micro_batches");
    if (iterations <= warmup_iterations)
      throw std::invalid_argument("iterations must exceed warmup_iterations");
    if (replicas < 1) throw std::invalid_argument("replicas must be >= 1");
  }
};

struct PipelineResult {
  double per_iteration = 0.0;
  int measured_iterations = 0;
  double ideal_per_iteration = 0.0;   // no-bubble, no-transfer bound
  double bubble_fraction = 0.0;       // 1 - ideal/measured
  std::size_t stages = 0;
  int replicas = 1;
};

class PipelineTrainer {
 public:
  // GPUs are taken from the cluster's ring order: replica r owns the
  // contiguous block [r*S, (r+1)*S) where S = total_gpus / replicas.
  PipelineTrainer(sim::Simulator& sim, hw::FlowNetwork& net, hw::Cluster& cluster,
                  const dnn::Model& model, PipelineConfig config);

  PipelineResult run();

  const PipelinePlan& plan() const { return plan_; }

 private:
  sim::Simulator& sim_;
  hw::FlowNetwork& net_;
  hw::Cluster& cluster_;
  const dnn::Model& model_;
  PipelineConfig config_;
  PipelinePlan plan_;
};

}  // namespace stash::ddl
