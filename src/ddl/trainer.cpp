#include "ddl/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "coll/comm_stream.h"
#include "coll/ring_allreduce.h"
#include "sim/mailbox.h"
#include "sim/sync.h"
#include "util/stats.h"

namespace stash::ddl {

ModelDoesNotFit::ModelDoesNotFit(const std::string& model, int batch, double need,
                                 double have)
    : std::runtime_error("model " + model + " with per-GPU batch " +
                         std::to_string(batch) + " needs " + std::to_string(need) +
                         " bytes but the GPU has " + std::to_string(have)),
      needed_bytes(need),
      available_bytes(have) {}

namespace {

// Everything the worker/loader coroutines share. Lives on Trainer::run()'s
// stack and outlives sim.run(), so references into it are safe.
struct RunState {
  sim::Simulator& sim;
  hw::FlowNetwork& net;
  hw::Cluster& cluster;
  const TrainConfig& config;

  std::vector<hw::GpuRef> gpus;
  double round_latency = 0.0;
  // One-round analysis of the participant ring, used to price the
  // synchronous (non-overlapped) share of each collective without
  // double-simulating: per hop, its link path; per link, how many times a
  // round traverses it. The slowest hop's rate is evaluated against
  // *current* capacities at each flush so time-varying QoS is felt.
  std::vector<std::vector<hw::Link*>> ring_hop_paths;
  std::unordered_map<const hw::Link*, int> ring_traversals;

  double ring_seconds_per_chunk_byte() const {
    double slowest = std::numeric_limits<double>::infinity();
    for (const auto& path : ring_hop_paths) {
      double rate = std::numeric_limits<double>::infinity();
      for (const hw::Link* l : path)
        rate = std::min(rate, l->capacity() / ring_traversals.at(l));
      slowest = std::min(slowest, rate);
    }
    return std::isfinite(slowest) && slowest > 0.0 ? 1.0 / slowest : 0.0;
  }

  // Analytic cost of one all-reduce of `bytes` over the participant ring.
  double estimate_collective_seconds(double bytes) const {
    auto k = static_cast<double>(gpus.size());
    if (k < 2) return 0.0;
    double rounds = 2.0 * (k - 1.0);
    return rounds * (round_latency + (bytes / k) * ring_seconds_per_chunk_byte());
  }

  // Precomputed per-iteration quantities.
  std::vector<dnn::Model::BackwardStep> steps;
  std::vector<double> flush_bytes;  // per-step all-reduce flush (0 = none)
  std::size_t num_buckets = 0;
  double fwd_time = 0.0;
  double bwd_time = 0.0;
  double opt_time = 0.0;
  double batch_over_flops = 0.0;  // batch / gpu_flops
  double h2d_bytes = 0.0;
  double batch_disk_bytes = 0.0;
  double prep_seconds = 0.0;
  double miss_fraction = 0.0;

  coll::CollectiveContext coll_ctx;
  coll::CommStream stream;
  sim::Barrier start_barrier;
  sim::Barrier end_barrier;
  // Host-side prefetch queue (loaders -> H2D stage) and device-side double
  // buffer (H2D stage -> worker). The H2D stage copies batches to the GPU
  // ahead of consumption — pinned-memory async uploads, PyTorch-style — so
  // upload latency hides behind compute while its flows still contend on
  // the PCIe bridge.
  std::vector<std::unique_ptr<sim::Mailbox<int>>> boxes;
  std::vector<std::unique_ptr<sim::Mailbox<int>>> device_boxes;
  std::vector<int> produced;

  // Measurements (lead worker, post-warmup).
  util::SampleSet iter_times;
  double sum_data_wait = 0.0;
  double sum_h2d = 0.0;
  double sum_compute = 0.0;
  double sum_comm_tail = 0.0;

  RunState(sim::Simulator& s, hw::FlowNetwork& n, hw::Cluster& c,
           const TrainConfig& cfg, std::vector<hw::GpuRef> gpu_list)
      : sim(s),
        net(n),
        cluster(c),
        config(cfg),
        gpus(std::move(gpu_list)),
        coll_ctx{s, n, c, cfg.collective},
        stream(s),
        start_barrier(s, gpus.size()),
        end_barrier(s, gpus.size()) {}
};

// Records a span on the shared trace if one is attached. Track ids: pid is
// the machine of the lead GPU, tid the local GPU index; the comm stream
// uses tid 100.
void trace_span(RunState& st, const char* name, const char* category,
                double start_s, int tid) {
  if (st.config.trace == nullptr) return;
  st.config.trace->add_span(name, category, start_s, st.sim.now() - start_s,
                            st.gpus.front().machine, tid);
}

sim::Task<void> run_one_allreduce(RunState& st, double bytes,
                                  std::shared_ptr<sim::Latch> latch) {
  const double start = st.sim.now();
  co_await st.stream.enqueue([&st, bytes]() -> sim::Task<void> {
    return coll::ring_allreduce_over(st.coll_ctx, st.gpus, bytes, st.round_latency);
  });
  trace_span(st, "allreduce", "comm", start, 100);
  latch->count_down();
}

sim::Task<void> loader(RunState& st, std::size_t gpu_idx) {
  hw::Machine& mach = st.cluster.machine(st.gpus[gpu_idx].machine);
  while (st.produced[gpu_idx] < st.config.iterations) {
    ++st.produced[gpu_idx];
    double miss_bytes = st.batch_disk_bytes * st.miss_fraction;
    if (miss_bytes > 0.0) co_await mach.storage().read(miss_bytes);
    if (st.prep_seconds > 0.0) co_await mach.cpus().run(st.prep_seconds);
    co_await st.boxes[gpu_idx]->put(1);
  }
}

// Uploads prefetched batches into the GPU's double buffer.
sim::Task<void> h2d_stage(RunState& st, std::size_t idx) {
  hw::Machine& mach = st.cluster.machine(st.gpus[idx].machine);
  const int local_gpu = st.gpus[idx].local;
  for (int iter = 0; iter < st.config.iterations; ++iter) {
    co_await st.boxes[idx]->get();
    const double start = st.sim.now();
    co_await st.net.transfer(st.h2d_bytes, mach.h2d_path(local_gpu));
    if (idx == 0) {
      if (iter >= st.config.warmup_iterations) st.sum_h2d += st.sim.now() - start;
      trace_span(st, "h2d", "pipeline", start, 50);
    }
    co_await st.device_boxes[idx]->put(1);
  }
}

sim::Task<void> worker(RunState& st, std::size_t idx) {
  const bool lead = idx == 0;
  const double compute_scale = st.config.straggler.scale_for(idx);

  for (int iter = 0; iter < st.config.iterations; ++iter) {
    const bool measured = lead && iter >= st.config.warmup_iterations;
    const double iter_start = st.sim.now();

    if (!st.config.synthetic_data) {
      const double wait_start = st.sim.now();
      co_await st.device_boxes[idx]->get();
      if (measured) st.sum_data_wait += st.sim.now() - wait_start;
      if (lead) trace_span(st, "data_wait", "pipeline", wait_start, 0);
    }

    co_await st.start_barrier.arrive_and_wait();

    // Gradient synchronization happens this iteration unless local SGD is
    // deferring it; gradients may be compressed before exchange.
    const bool syncs = st.config.comm_reduction.syncs_on(iter);
    const double bytes_factor = st.config.comm_reduction.bytes_factor();

    if (lead) {
      const double compute_start = st.sim.now();
      co_await st.sim.delay(st.fwd_time * compute_scale);
      trace_span(st, "forward", "compute", compute_start, 0);
      const double backward_start = st.sim.now();

      const double overlap = st.config.collective.overlap_fraction;
      const bool exchanges = st.gpus.size() > 1 && syncs;
      const bool has_async = exchanges && overlap > 0.0;
      auto latch = std::make_shared<sim::Latch>(st.sim,
                                                has_async ? st.num_buckets : 0);
      for (std::size_t s = 0; s < st.steps.size(); ++s) {
        co_await st.sim.delay(st.steps[s].flops_per_sample * st.batch_over_flops *
                              compute_scale);
        if (exchanges && st.flush_bytes[s] > 0.0) {
          // Bucket flush. The launch overhead (the paper's per-layer tau)
          // and the non-overlapped share of the transfer block the compute
          // stream; the overlapped share proceeds as real flows on the
          // comm stream, contending with everything else.
          double wire_bytes = st.flush_bytes[s] * bytes_factor;
          double sync_cost =
              (1.0 - overlap) * st.estimate_collective_seconds(wire_bytes);
          co_await st.sim.delay(st.config.collective.launch_blocking_latency +
                                sync_cost);
          if (has_async)
            st.sim.spawn(run_one_allreduce(st, overlap * wire_bytes, latch));
        }
      }
      const double backward_end = st.sim.now();
      trace_span(st, "backward+flush", "compute", backward_start, 0);
      co_await latch->wait();
      const double tail = st.sim.now() - backward_end;
      trace_span(st, "comm_tail", "comm", backward_end, 0);
      const double opt_start = st.sim.now();
      co_await st.sim.delay(st.opt_time);
      trace_span(st, "optimizer", "compute", opt_start, 0);
      if (measured) {
        st.sum_comm_tail += tail;
        st.sum_compute += (backward_end - compute_start) + st.opt_time;
      }
    } else {
      // Followers run the same compute schedule (possibly slower when
      // straggling); the end barrier paces everyone on the slowest party.
      co_await st.sim.delay((st.fwd_time + st.bwd_time + st.opt_time) *
                            compute_scale);
    }

    co_await st.end_barrier.arrive_and_wait();
    if (measured) st.iter_times.add(st.sim.now() - iter_start);
  }
}

}  // namespace

Trainer::Trainer(sim::Simulator& sim, hw::FlowNetwork& net, hw::Cluster& cluster,
                 const dnn::Model& model, const dnn::Dataset& dataset,
                 TrainConfig config)
    : sim_(sim),
      net_(net),
      cluster_(cluster),
      model_(model),
      dataset_(dataset),
      config_(std::move(config)) {}

TrainResult Trainer::run() {
  config_.validate();

  std::vector<hw::GpuRef> gpus =
      config_.use_gpus.empty() ? cluster_.ring_order() : config_.use_gpus;
  if (gpus.empty()) throw std::invalid_argument("Trainer: no GPUs to train on");
  for (const auto& g : gpus) {
    if (g.machine < 0 || g.machine >= static_cast<int>(cluster_.num_machines()) ||
        g.local < 0 || g.local >= cluster_.machine(g.machine).num_gpus())
      throw std::out_of_range("Trainer: GPU reference out of range");
  }

  const hw::GpuSpec& gpu = cluster_.machine(gpus.front().machine).gpu();
  if (config_.enforce_memory) {
    double need = model_.train_memory_bytes(config_.per_gpu_batch);
    if (need > gpu.memory_bytes)
      throw ModelDoesNotFit(model_.name(), config_.per_gpu_batch, need,
                            gpu.memory_bytes);
  }

  RunState st(sim_, net_, cluster_, config_, std::move(gpus));

  if (config_.trace != nullptr) {
    int pid = st.gpus.front().machine;
    config_.trace->name_track(pid, 0, "lead GPU worker");
    config_.trace->name_track(pid, 50, "H2D stage (gpu 0)");
    config_.trace->name_track(pid, 100, "comm stream");
  }

  // Does the participant set span machines? That decides the per-round
  // collective launch latency.
  std::set<int> machines_used;
  for (const auto& g : st.gpus) machines_used.insert(g.machine);
  st.round_latency = machines_used.size() > 1
                         ? config_.collective.inter_round_latency
                         : config_.collective.intra_round_latency;

  // One-round ring analysis: every hop moves one chunk concurrently; a
  // link's bandwidth divides across all its traversals in the round, and
  // the slowest hop paces it.
  if (st.gpus.size() > 1) {
    for (std::size_t i = 0; i < st.gpus.size(); ++i) {
      auto path = cluster_.path(st.gpus[i], st.gpus[(i + 1) % st.gpus.size()]);
      for (const hw::Link* l : path) ++st.ring_traversals[l];
      st.ring_hop_paths.push_back(std::move(path));
    }
  }

  st.steps = model_.backward_steps();
  st.flush_bytes.assign(st.steps.size(), 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < st.steps.size(); ++i) {
    acc += st.steps[i].grad_bytes;
    if (config_.bucket_bytes <= 0.0 || acc >= config_.bucket_bytes) {
      st.flush_bytes[i] = acc;
      acc = 0.0;
    }
  }
  if (acc > 0.0 && !st.flush_bytes.empty()) st.flush_bytes.back() += acc;
  for (double b : st.flush_bytes)
    if (b > 0.0) ++st.num_buckets;

  const double batch = static_cast<double>(config_.per_gpu_batch);
  st.batch_over_flops = batch / gpu.effective_flops;
  st.fwd_time = model_.fwd_flops_per_sample() * st.batch_over_flops;
  st.bwd_time = model_.bwd_flops_per_sample() * st.batch_over_flops;
  st.opt_time = config_.optimizer_overhead * (st.fwd_time + st.bwd_time);
  st.h2d_bytes = model_.input_tensor_bytes() * batch;
  st.batch_disk_bytes = dataset_.bytes_per_sample() * batch;
  st.prep_seconds = dataset_.prep_cpu_seconds_per_sample * batch;

  if (config_.cold_cache) {
    st.miss_fraction = 1.0;
  } else {
    const hw::Machine& m0 = cluster_.machine(st.gpus.front().machine);
    double cache_bytes = m0.config().dram_bytes * 0.85;
    st.miss_fraction =
        1.0 - std::min(1.0, cache_bytes / std::max(1.0, dataset_.total_bytes));
  }

  if (!config_.synthetic_data) {
    st.produced.assign(st.gpus.size(), 0);
    for (std::size_t i = 0; i < st.gpus.size(); ++i) {
      st.boxes.push_back(std::make_unique<sim::Mailbox<int>>(
          sim_, static_cast<std::size_t>(config_.prefetch_depth)));
      st.device_boxes.push_back(std::make_unique<sim::Mailbox<int>>(sim_, 2));
      for (int w = 0; w < config_.loader_workers_per_gpu; ++w)
        sim_.spawn(loader(st, i));
      sim_.spawn(h2d_stage(st, i));
    }
  }

  for (std::size_t i = 0; i < st.gpus.size(); ++i) sim_.spawn(worker(st, i));
  sim_.run();
  if (!sim_.all_processes_done())
    throw std::logic_error("Trainer: simulation deadlocked");

  TrainResult result;
  result.measured_iterations = static_cast<int>(st.iter_times.count());
  result.window_time = 0.0;
  for (double t : st.iter_times.samples()) result.window_time += t;
  result.per_iteration = st.iter_times.mean();
  double n = std::max<std::size_t>(1, st.iter_times.count());
  result.data_wait = st.sum_data_wait / n;
  result.h2d_time = st.sum_h2d / n;
  result.compute_time = st.sum_compute / n;
  result.comm_tail = st.sum_comm_tail / n;
  result.gpus_used = static_cast<int>(st.gpus.size());
  return result;
}

int Trainer::max_batch_that_fits(const dnn::Model& model, const hw::GpuSpec& gpu) {
  int best = 0;
  for (int b = 1; b <= 1024; b *= 2) {
    if (model.train_memory_bytes(b) <= gpu.memory_bytes)
      best = b;
    else
      break;
  }
  return best;
}

}  // namespace stash::ddl
