#include "ddl/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "coll/baselines.h"
#include "coll/comm_stream.h"
#include "coll/ring_allreduce.h"
#include "sim/mailbox.h"
#include "sim/sync.h"
#include "util/log.h"
#include "util/stats.h"

namespace stash::ddl {

ModelDoesNotFit::ModelDoesNotFit(const std::string& model, int batch, double need,
                                 double have)
    : std::runtime_error("model " + model + " with per-GPU batch " +
                         std::to_string(batch) + " needs " + std::to_string(need) +
                         " bytes but the GPU has " + std::to_string(have)),
      needed_bytes(need),
      available_bytes(have) {}

namespace {

struct Attempt;

// Everything the worker/loader coroutines share. Lives on Trainer::run()'s
// stack and outlives sim.run(), so references into it are safe. Fault
// recovery re-runs the worker group as a sequence of "attempts"; attempt
// state is arena-allocated here because coroutines parked in an aborted
// attempt (dead workers, stranded loaders) still reference it until the
// Simulator reclaims them.
struct RunState {
  sim::Simulator& sim;
  hw::FlowNetwork& net;
  hw::Cluster& cluster;
  const TrainConfig& config;

  std::vector<hw::GpuRef> all_gpus;  // the configured participant set
  int trace_pid = 0;

  // Optional metrics sink plus cached per-iteration instruments (null when
  // no registry is attached).
  telemetry::MetricsRegistry* metrics = nullptr;
  // Optional causal-edge sink for critical-path attribution (null = off).
  obs::CausalLog* causal = nullptr;
  telemetry::Histogram* h_iter = nullptr;
  telemetry::Histogram* h_data_wait = nullptr;
  telemetry::Histogram* h_h2d = nullptr;
  telemetry::Histogram* h_compute = nullptr;
  telemetry::Histogram* h_comm_tail = nullptr;
  telemetry::TimeWeightedGauge* g_prefetch_depth = nullptr;
  telemetry::Counter* c_disk_bytes = nullptr;
  telemetry::Counter* c_buckets = nullptr;

  // Per-iteration counter-track sampling (link utilization deltas).
  double prev_bridge_bytes = 0.0;
  double prev_nic_bytes = 0.0;
  double prev_sample_time = 0.0;

  // Precomputed per-iteration quantities.
  std::vector<dnn::Model::BackwardStep> steps;
  std::vector<double> flush_bytes;  // per-step all-reduce flush (0 = none)
  std::size_t num_buckets = 0;
  double fwd_time = 0.0;
  double bwd_time = 0.0;
  double opt_time = 0.0;
  double batch_over_flops = 0.0;  // batch / gpu_flops
  double h2d_bytes = 0.0;
  double batch_disk_bytes = 0.0;
  double prep_seconds = 0.0;
  double miss_fraction = 0.0;

  coll::CollectiveContext coll_ctx;
  coll::CommStream stream;

  std::vector<std::unique_ptr<Attempt>> attempts;

  // Measurements (lead worker, post-warmup).
  util::SampleSet iter_times;
  double sum_data_wait = 0.0;
  double sum_h2d = 0.0;
  double sum_compute = 0.0;
  double sum_comm_tail = 0.0;

  // Fault-tolerance progress. high_water is the furthest committed
  // iteration across all attempts; iterations below it in a later attempt
  // are rework (charged to the fault stall, excluded from statistics).
  int high_water = 0;
  double last_ckpt_time = 0.0;  // run start counts as checkpoint zero
  int last_ckpt_iter = 0;
  int checkpoints_written = 0;
  double checkpoint_seconds = 0.0;
  double fault_wait_seconds = 0.0;
  double fault_rework_seconds = 0.0;
  std::vector<RecoveryRecord> recoveries;
  bool finished = false;
  int gpus_at_end = 0;

  RunState(sim::Simulator& s, hw::FlowNetwork& n, hw::Cluster& c,
           const TrainConfig& cfg, std::vector<hw::GpuRef> gpu_list)
      : sim(s),
        net(n),
        cluster(c),
        config(cfg),
        all_gpus(std::move(gpu_list)),
        coll_ctx{s, n, c, cfg.collective, cfg.metrics, cfg.causal},
        stream(s) {
    metrics = cfg.metrics;
    causal = cfg.causal;
    if (metrics != nullptr) {
      h_iter = &metrics->histogram("ddl/iter/total_s");
      h_data_wait = &metrics->histogram("ddl/iter/data_wait_s");
      h_h2d = &metrics->histogram("ddl/iter/h2d_s");
      h_compute = &metrics->histogram("ddl/iter/compute_s");
      h_comm_tail = &metrics->histogram("ddl/iter/comm_tail_s");
      g_prefetch_depth = &metrics->time_gauge("ddl/pipeline/prefetch_depth");
      c_disk_bytes = &metrics->counter("ddl/data/disk_bytes_read");
      c_buckets = &metrics->counter("coll/buckets_flushed");
    }
  }
};

// One contiguous execution of the worker group: a participant set, an
// iteration range, and the barriers/mailboxes that tie them together. A
// healthy run is exactly one attempt; every recovery opens a new one.
struct Attempt {
  std::vector<hw::GpuRef> gpus;
  int start_iter;
  int end_iter;
  int rework_limit;  // iterations below this are replay of committed work

  sim::AbortableBarrier start_barrier;
  sim::AbortableBarrier end_barrier;
  // Host-side prefetch queue (loaders -> H2D stage) and device-side double
  // buffer (H2D stage -> worker), per participant.
  std::vector<std::unique_ptr<sim::Mailbox<int>>> boxes;
  std::vector<std::unique_ptr<sim::Mailbox<int>>> device_boxes;
  std::vector<int> produced;

  sim::Event done;
  std::size_t live_workers;
  bool aborted = false;
  std::optional<double> detected_time;  // first watchdog/abort observation
  double last_death_time = 0.0;         // silent crash exits (no survivor saw it)
  int completed_through;    // first global iteration index NOT committed
  double last_commit_time;  // when the last end barrier released

  // One-round analysis of this attempt's ring, used to price the
  // synchronous (non-overlapped) share of each collective without
  // double-simulating: per hop, its link path; per link, how many times a
  // round traverses it. The slowest hop's rate is evaluated against
  // *current* capacities at each flush so time-varying QoS (and injected
  // link faults) are felt.
  double round_latency = 0.0;
  double intra_round_latency = 0.0;
  std::vector<std::vector<hw::Link*>> ring_hop_paths;
  std::unordered_map<const hw::Link*, int> ring_traversals;
  // Intra-machine subset of the hops, for the causal split of the
  // synchronous collective charge into interconnect vs. network time: the
  // intra-only bottleneck prices what the same collective would cost with
  // no machine boundary crossed.
  std::vector<std::vector<hw::Link*>> intra_hop_paths;
  std::unordered_map<const hw::Link*, int> intra_traversals;

  // True when this attempt exchanges gradients with the hierarchical
  // collective (explicitly requested, or kAuto crossed the machine-count
  // threshold). The analytic pricing below follows the same schedule.
  bool hierarchical = false;
  // Hierarchical pricing inputs: hop paths/traversals of the leader ring
  // (NIC tier) and of the slowest machine's intra ring, plus that ring's
  // participant count.
  std::vector<std::vector<hw::Link*>> leader_hop_paths;
  std::unordered_map<const hw::Link*, int> leader_traversals;
  std::size_t intra_ring_size = 0;

  Attempt(RunState& st, std::vector<hw::GpuRef> parts, int from, int to)
      : gpus(std::move(parts)),
        start_iter(from),
        end_iter(to),
        rework_limit(st.high_water),
        start_barrier(st.sim, gpus.size(), st.config.fault_tolerance.enabled()
                                               ? st.config.fault_tolerance.barrier_timeout_s
                                               : 0.0),
        end_barrier(st.sim, gpus.size(), st.config.fault_tolerance.enabled()
                                             ? st.config.fault_tolerance.barrier_timeout_s
                                             : 0.0),
        done(st.sim),
        live_workers(gpus.size()),
        completed_through(from),
        last_commit_time(st.sim.now()) {
    std::set<int> machines_used;
    for (const auto& g : gpus) machines_used.insert(g.machine);
    round_latency = machines_used.size() > 1
                        ? st.config.collective.inter_round_latency
                        : st.config.collective.intra_round_latency;
    intra_round_latency = st.config.collective.intra_round_latency;
    const auto algo = st.config.collective.algorithm;
    hierarchical =
        machines_used.size() > 1 &&
        (algo == coll::CollectiveAlgo::kHierarchical ||
         (algo == coll::CollectiveAlgo::kAuto &&
          static_cast<int>(machines_used.size()) >=
              st.config.collective.hierarchical_auto_machines));
    if (gpus.size() > 1) {
      for (std::size_t i = 0; i < gpus.size(); ++i) {
        auto path = st.cluster.path(gpus[i], gpus[(i + 1) % gpus.size()]);
        if (gpus[i].machine == gpus[(i + 1) % gpus.size()].machine) {
          for (const hw::Link* l : path) ++intra_traversals[l];
          intra_hop_paths.push_back(path);
        }
        for (const hw::Link* l : path) ++ring_traversals[l];
        ring_hop_paths.push_back(std::move(path));
      }
    }
    if (hierarchical) {
      // Leader ring: the first participant of each machine, in appearance
      // order — the same grouping hierarchical_allreduce_over derives.
      std::vector<hw::GpuRef> leaders;
      std::unordered_map<int, std::size_t> group_of;
      std::vector<std::size_t> group_sizes;
      for (const auto& g : gpus) {
        auto [it, inserted] = group_of.try_emplace(g.machine, leaders.size());
        if (inserted) {
          leaders.push_back(g);
          group_sizes.push_back(0);
        }
        ++group_sizes[it->second];
      }
      for (std::size_t sz : group_sizes)
        intra_ring_size = std::max(intra_ring_size, sz);
      for (std::size_t i = 0; i < leaders.size(); ++i) {
        auto path =
            st.cluster.path(leaders[i], leaders[(i + 1) % leaders.size()]);
        for (const hw::Link* l : path) ++leader_traversals[l];
        leader_hop_paths.push_back(std::move(path));
      }
    }
  }

  static double slowest_hop_seconds_per_byte(
      const std::vector<std::vector<hw::Link*>>& hops,
      const std::unordered_map<const hw::Link*, int>& traversals) {
    double slowest = std::numeric_limits<double>::infinity();
    for (const auto& path : hops) {
      double rate = std::numeric_limits<double>::infinity();
      for (const hw::Link* l : path)
        rate = std::min(rate, l->capacity() / traversals.at(l));
      slowest = std::min(slowest, rate);
    }
    return std::isfinite(slowest) && slowest > 0.0 ? 1.0 / slowest : 0.0;
  }

  double ring_seconds_per_chunk_byte() const {
    return slowest_hop_seconds_per_byte(ring_hop_paths, ring_traversals);
  }

  // The intra-machine phases of the hierarchical schedule priced against
  // current capacities: phase-1 ring of the largest machine group plus the
  // phase-3 pipelined broadcast.
  double hierarchical_intra_seconds(double bytes, double intra_latency) const {
    auto g = static_cast<double>(intra_ring_size);
    if (g < 2.0) return 0.0;
    double per_byte =
        slowest_hop_seconds_per_byte(intra_hop_paths, intra_traversals);
    return 2.0 * (g - 1.0) * (intra_latency + (bytes / g) * per_byte) +
           intra_latency + bytes * per_byte;
  }

  // Analytic cost of one all-reduce of `bytes` over the participant set,
  // following whichever schedule this attempt actually runs (flat ring or
  // hierarchical).
  double estimate_collective_seconds(double bytes) const {
    auto k = static_cast<double>(gpus.size());
    if (k < 2) return 0.0;
    if (hierarchical) {
      auto m = static_cast<double>(leader_hop_paths.size());
      double per_byte =
          slowest_hop_seconds_per_byte(leader_hop_paths, leader_traversals);
      double total = 2.0 * (m - 1.0) * (round_latency + (bytes / m) * per_byte);
      return total + hierarchical_intra_seconds(bytes, intra_round_latency);
    }
    double rounds = 2.0 * (k - 1.0);
    return rounds * (round_latency + (bytes / k) * ring_seconds_per_chunk_byte());
  }

  // The same collective priced against only the intra-machine hops: the
  // interconnect share of the charge. Always <= the full estimate — the
  // intra bottleneck is a subset of the full ring's constraints (for the
  // hierarchical schedule, it is the machine-internal phases).
  double estimate_collective_seconds_intra(double bytes,
                                           double intra_latency) const {
    auto k = static_cast<double>(gpus.size());
    if (k < 2) return 0.0;
    if (hierarchical) return hierarchical_intra_seconds(bytes, intra_latency);
    double rounds = 2.0 * (k - 1.0);
    double per_byte =
        slowest_hop_seconds_per_byte(intra_hop_paths, intra_traversals);
    return rounds * (intra_latency + (bytes / k) * per_byte);
  }

  // A survivor observed the fault (barrier timeout or abort). Kills both
  // barriers so workers still in flight unwind at their next arrival
  // instead of waiting out another watchdog window.
  void mark_fault(double now) {
    if (!detected_time) detected_time = now;
    aborted = true;
    start_barrier.abort();
    end_barrier.abort();
  }

  // A worker on a crashed machine exits silently: no barrier abort (dead
  // processes don't notify anyone) — survivors find out via the watchdog.
  void note_death(double now) {
    aborted = true;
    last_death_time = now;
  }

  void worker_exited() {
    if (--live_workers == 0) done.trigger();
  }
};

// Records a span on the shared trace if one is attached. Track ids: pid is
// the worker's machine, tid its local GPU index; each worker's H2D stage
// uses tid 50+local, the fault/recovery track tid 90, and the comm stream
// tid 100 (both on the lead machine's pid).
void trace_span(RunState& st, const char* name, const char* category,
                double start_s, int pid, int tid) {
  if (st.config.trace == nullptr) return;
  st.config.trace->add_span(name, category, start_s, st.sim.now() - start_s,
                            pid, tid);
}

// Body of one enqueued all-reduce. Runs when the comm stream reaches it:
// first closes the causal queue-wait edge [enqueue, stream start] — caused
// by the previous collective still draining (or instantaneous when the
// stream was idle) — then performs the ring rounds, which chain their own
// edges from it via the log's comm-chain tail.
sim::Task<void> stream_allreduce(RunState& st, Attempt& at, double bytes,
                                 int flush_edge, double enqueue_time) {
  if (st.causal != nullptr) {
    const double now = st.sim.now();
    const int queued = st.causal->add_wait(
        obs::Category::kInterconnect, "comm_queue", at.gpus[0].machine,
        at.gpus[0].local, st.causal->iteration(), enqueue_time, now,
        /*prev=*/flush_edge, /*cause=*/st.causal->comm_chain());
    st.causal->set_comm_chain(queued);
  }
  if (at.hierarchical)
    co_await coll::hierarchical_allreduce_over(st.coll_ctx, at.gpus, bytes);
  else
    co_await coll::ring_allreduce_over(st.coll_ctx, at.gpus, bytes,
                                       at.round_latency);
}

sim::Task<void> run_one_allreduce(RunState& st, Attempt& at, double bytes,
                                  std::shared_ptr<sim::Latch> latch,
                                  int flush_edge) {
  const double start = st.sim.now();
  co_await st.stream.enqueue([&st, &at, bytes, flush_edge,
                              start]() -> sim::Task<void> {
    return stream_allreduce(st, at, bytes, flush_edge, start);
  });
  trace_span(st, "allreduce", "comm", start, st.trace_pid, 100);
  latch->count_down();
}

sim::Task<void> loader(RunState& st, Attempt& at, std::size_t gpu_idx) {
  hw::Machine& mach = st.cluster.machine(at.gpus[gpu_idx].machine);
  const int machine = at.gpus[gpu_idx].machine;
  const int local = at.gpus[gpu_idx].local;
  const faults::FaultState* fs = st.config.fault_tolerance.faults;
  const int needed = at.end_iter - at.start_iter;
  int prev = -1;  // this coroutine's causal chain tail
  while (at.produced[gpu_idx] < needed) {
    if (fs != nullptr && fs->crashed(machine, st.sim.now())) co_return;
    ++at.produced[gpu_idx];
    const int iter_tag = at.start_iter + at.produced[gpu_idx] - 1;
    double miss_bytes = st.batch_disk_bytes * st.miss_fraction;
    if (miss_bytes > 0.0) {
      const double fetch_start = st.sim.now();
      co_await mach.storage().read(miss_bytes);
      if (st.causal != nullptr)
        prev = st.causal->add_activity(obs::Category::kDisk, "disk_fetch",
                                       machine, local, iter_tag, fetch_start,
                                       st.sim.now(), prev);
      if (st.c_disk_bytes != nullptr) st.c_disk_bytes->add(miss_bytes);
    }
    if (st.prep_seconds > 0.0) {
      const double prep_start = st.sim.now();
      co_await mach.cpus().run(st.prep_seconds);
      if (st.causal != nullptr)
        prev = st.causal->add_activity(obs::Category::kCpuPrep, "cpu_prep",
                                       machine, local, iter_tag, prep_start,
                                       st.sim.now(), prev);
    }
    const double put_start = st.sim.now();
    co_await at.boxes[gpu_idx]->put(prev);
    if (st.causal != nullptr && st.sim.now() > put_start)
      prev = st.causal->add_wait(obs::Category::kPipeline, "prefetch_full",
                                 machine, local, iter_tag, put_start,
                                 st.sim.now(), prev, /*cause=*/-1);
    // Loader occupancy telemetry follows the lead GPU's prefetch queue: a
    // time-weighted gauge for the metrics file and a Chrome counter track
    // so occupancy renders as a graph under the span tracks.
    if (gpu_idx == 0) {
      double depth = static_cast<double>(at.boxes[0]->size());
      if (st.g_prefetch_depth != nullptr)
        st.g_prefetch_depth->set(st.sim.now(), depth);
      if (st.config.trace != nullptr)
        st.config.trace->add_counter("prefetch_depth(gpu0)", st.sim.now(), depth,
                                     machine);
    }
  }
}

// Uploads prefetched batches into the GPU's double buffer.
sim::Task<void> h2d_stage(RunState& st, Attempt& at, std::size_t idx) {
  hw::Machine& mach = st.cluster.machine(at.gpus[idx].machine);
  const int machine = at.gpus[idx].machine;
  const int local_gpu = at.gpus[idx].local;
  int prev = -1;  // this coroutine's causal chain tail
  for (int iter = at.start_iter; iter < at.end_iter; ++iter) {
    const double get_start = st.sim.now();
    const int batch_edge = co_await at.boxes[idx]->get();
    if (st.causal != nullptr && st.sim.now() > get_start)
      prev = st.causal->add_wait(obs::Category::kPipeline, "prefetch_wait",
                                 machine, local_gpu, iter, get_start,
                                 st.sim.now(), prev, /*cause=*/batch_edge);
    if (idx == 0 && st.g_prefetch_depth != nullptr)
      st.g_prefetch_depth->set(st.sim.now(),
                               static_cast<double>(at.boxes[0]->size()));
    const double start = st.sim.now();
    co_await st.net.transfer(st.h2d_bytes, mach.h2d_path(local_gpu));
    if (st.causal != nullptr)
      prev = st.causal->add_activity(obs::Category::kH2D, "h2d", machine,
                                     local_gpu, iter, start, st.sim.now(),
                                     prev);
    if (idx == 0 && iter >= st.config.warmup_iterations &&
        iter >= at.rework_limit) {
      st.sum_h2d += st.sim.now() - start;
      if (st.h_h2d != nullptr) st.h_h2d->observe(st.sim.now() - start);
    }
    trace_span(st, "h2d", "pipeline", start, machine, 50 + local_gpu);
    const double put_start = st.sim.now();
    co_await at.device_boxes[idx]->put(prev);
    if (st.causal != nullptr && st.sim.now() > put_start)
      prev = st.causal->add_wait(obs::Category::kPipeline, "device_full",
                                 machine, local_gpu, iter, put_start,
                                 st.sim.now(), prev, /*cause=*/-1);
  }
}

sim::Task<void> worker(RunState& st, Attempt& at, std::size_t idx) {
  const bool lead = idx == 0;
  const int machine = at.gpus[idx].machine;
  const int local = at.gpus[idx].local;
  const double het_scale = st.config.straggler.scale_for(idx);
  const faults::FaultState* fs = st.config.fault_tolerance.faults;
  const auto& ft = st.config.fault_tolerance;
  telemetry::Counter* busy_s = nullptr;
  if (st.metrics != nullptr)
    busy_s = &st.metrics->counter("machine" + std::to_string(machine) + "/gpu" +
                                  std::to_string(local) + "/busy_s");

  int prev = -1;  // this coroutine's causal chain tail
  for (int iter = at.start_iter; iter < at.end_iter; ++iter) {
    // A revoked machine's process dies between iterations: it stops
    // arriving at barriers and the survivors' watchdog does the detection.
    if (fs != nullptr && fs->crashed(machine, st.sim.now())) {
      if (st.config.trace != nullptr)
        st.config.trace->add_instant("worker crash", "fault", st.sim.now(),
                                     machine, local);
      if (st.metrics != nullptr)
        st.metrics->counter("faults/worker_deaths").increment();
      at.note_death(st.sim.now());
      at.worker_exited();
      co_return;
    }

    const bool rework = iter < at.rework_limit;
    const bool measured =
        lead && !rework && iter >= st.config.warmup_iterations;
    const double iter_start = st.sim.now();
    // Per-iteration phase breakdown for the streaming observer (lead only;
    // kept alongside the run-level sums so both views agree exactly).
    double it_data_wait = 0.0;
    double it_compute = 0.0;
    double it_comm_tail = 0.0;
    double it_barrier = 0.0;
    double it_checkpoint = 0.0;
    const double compute_scale =
        het_scale *
        (fs != nullptr ? fs->compute_scale(static_cast<int>(idx), st.sim.now())
                       : 1.0);

    if (lead && st.causal != nullptr) st.causal->set_iteration(iter);

    if (!st.config.synthetic_data) {
      const double wait_start = st.sim.now();
      const int batch_edge = co_await at.device_boxes[idx]->get();
      if (st.causal != nullptr && st.sim.now() > wait_start)
        prev = st.causal->add_wait(obs::Category::kPipeline, "data_wait",
                                   machine, local, iter, wait_start,
                                   st.sim.now(), prev, /*cause=*/batch_edge);
      if (lead) it_data_wait = st.sim.now() - wait_start;
      if (measured) {
        st.sum_data_wait += st.sim.now() - wait_start;
        if (st.h_data_wait != nullptr)
          st.h_data_wait->observe(st.sim.now() - wait_start);
      }
      trace_span(st, "data_wait", "pipeline", wait_start, machine, local);
    }

    // The arrival token threads this worker's causal chain into the
    // barrier; after release, last_token() is the straggler's edge — the
    // producer every other worker waited on.
    const double start_arrive = st.sim.now();
    if (co_await at.start_barrier.arrive_and_wait(prev) !=
        sim::AbortableBarrier::Result::kOk) {
      at.mark_fault(st.sim.now());
      at.worker_exited();
      co_return;
    }
    if (lead) it_barrier += st.sim.now() - start_arrive;
    if (st.causal != nullptr && st.sim.now() > start_arrive)
      prev = st.causal->add_wait(obs::Category::kBarrier, "start_barrier",
                                 machine, local, iter, start_arrive,
                                 st.sim.now(), prev,
                                 /*cause=*/at.start_barrier.last_token());

    // Gradient synchronization happens this iteration unless local SGD is
    // deferring it; gradients may be compressed before exchange.
    const bool syncs = st.config.comm_reduction.syncs_on(iter);
    const double bytes_factor = st.config.comm_reduction.bytes_factor();

    bool wrote_checkpoint = false;
    if (lead) {
      const double compute_start = st.sim.now();
      co_await st.sim.delay(st.fwd_time * compute_scale);
      if (st.causal != nullptr)
        prev = st.causal->add_activity(obs::Category::kCompute, "forward",
                                       machine, local, iter, compute_start,
                                       st.sim.now(), prev);
      trace_span(st, "forward", "compute", compute_start, machine, local);
      const double backward_start = st.sim.now();

      const double overlap = st.config.collective.overlap_fraction;
      const bool exchanges = at.gpus.size() > 1 && syncs;
      const bool has_async = exchanges && overlap > 0.0;
      auto latch = std::make_shared<sim::Latch>(st.sim,
                                                has_async ? st.num_buckets : 0);
      double seg_start = st.sim.now();  // open backward-compute segment
      for (std::size_t s = 0; s < st.steps.size(); ++s) {
        co_await st.sim.delay(st.steps[s].flops_per_sample * st.batch_over_flops *
                              compute_scale);
        if (exchanges && st.flush_bytes[s] > 0.0) {
          // Bucket flush. The launch overhead (the paper's per-layer tau)
          // and the non-overlapped share of the transfer block the compute
          // stream; the overlapped share proceeds as real flows on the
          // comm stream, contending with everything else.
          double wire_bytes = st.flush_bytes[s] * bytes_factor;
          double sync_cost =
              (1.0 - overlap) * at.estimate_collective_seconds(wire_bytes);
          const double flush_start = st.sim.now();
          if (st.causal != nullptr && flush_start > seg_start)
            prev = st.causal->add_activity(obs::Category::kCompute, "backward",
                                           machine, local, iter, seg_start,
                                           flush_start, prev);
          co_await st.sim.delay(st.config.collective.launch_blocking_latency +
                                sync_cost);
          if (st.causal != nullptr) {
            // The synchronous charge splits causally: launch overhead plus
            // what the collective would cost inside the machine is
            // interconnect time; the surplus only exists because the ring
            // crosses machines, so it is network time.
            const double sync_intra =
                (1.0 - overlap) *
                at.estimate_collective_seconds_intra(
                    wire_bytes, st.config.collective.intra_round_latency);
            const double ic_end = std::min(
                st.sim.now(), flush_start +
                                  st.config.collective.launch_blocking_latency +
                                  sync_intra);
            prev = st.causal->add_activity(obs::Category::kInterconnect,
                                           "flush", machine, local, iter,
                                           flush_start, ic_end, prev);
            if (st.sim.now() > ic_end)
              prev = st.causal->add_activity(obs::Category::kNetwork, "flush",
                                             machine, local, iter, ic_end,
                                             st.sim.now(), prev);
          }
          if (st.c_buckets != nullptr) st.c_buckets->increment();
          if (has_async)
            st.sim.spawn(
                run_one_allreduce(st, at, overlap * wire_bytes, latch, prev));
          seg_start = st.sim.now();
        }
      }
      if (st.causal != nullptr && st.sim.now() > seg_start)
        prev = st.causal->add_activity(obs::Category::kCompute, "backward",
                                       machine, local, iter, seg_start,
                                       st.sim.now(), prev);
      const double backward_end = st.sim.now();
      trace_span(st, "backward+flush", "compute", backward_start, machine, local);
      co_await latch->wait();
      if (st.causal != nullptr && st.sim.now() > backward_end)
        prev = st.causal->add_wait(obs::Category::kInterconnect, "comm_tail",
                                   machine, local, iter, backward_end,
                                   st.sim.now(), prev,
                                   /*cause=*/st.causal->comm_chain());
      const double tail = st.sim.now() - backward_end;
      trace_span(st, "comm_tail", "comm", backward_end, machine, local);
      const double opt_start = st.sim.now();
      co_await st.sim.delay(st.opt_time);
      if (st.causal != nullptr)
        prev = st.causal->add_activity(obs::Category::kCompute, "optimizer",
                                       machine, local, iter, opt_start,
                                       st.sim.now(), prev);
      trace_span(st, "optimizer", "compute", opt_start, machine, local);
      if (busy_s != nullptr)
        busy_s->add((st.fwd_time + st.bwd_time) * compute_scale + st.opt_time);
      it_comm_tail = tail;
      it_compute = (backward_end - compute_start) + st.opt_time;
      if (measured) {
        st.sum_comm_tail += tail;
        st.sum_compute += (backward_end - compute_start) + st.opt_time;
        if (st.h_compute != nullptr)
          st.h_compute->observe((backward_end - compute_start) + st.opt_time);
        if (st.h_comm_tail != nullptr) st.h_comm_tail->observe(tail);
      }
      // Periodic checkpoint: the lead pays the write stall before the end
      // barrier (so the whole group paces on it); the checkpoint only
      // becomes durable once this iteration commits.
      if (ft.enabled() &&
          st.sim.now() - st.last_ckpt_time >= ft.checkpoint_interval_s) {
        const double ckpt_start = st.sim.now();
        co_await st.sim.delay(ft.checkpoint_write_s);
        if (st.causal != nullptr)
          prev = st.causal->add_activity(obs::Category::kCheckpoint,
                                         "checkpoint", machine, local, iter,
                                         ckpt_start, st.sim.now(), prev);
        trace_span(st, "checkpoint", "pipeline", ckpt_start, machine, local);
        it_checkpoint = st.sim.now() - ckpt_start;
        wrote_checkpoint = true;
      }
    } else {
      // Followers run the same compute schedule (possibly slower when
      // straggling); the end barrier paces everyone on the slowest party.
      const double compute_start = st.sim.now();
      co_await st.sim.delay((st.fwd_time + st.bwd_time + st.opt_time) *
                            compute_scale);
      if (st.causal != nullptr)
        prev = st.causal->add_activity(obs::Category::kCompute, "compute",
                                       machine, local, iter, compute_start,
                                       st.sim.now(), prev);
      trace_span(st, "compute", "compute", compute_start, machine, local);
      if (busy_s != nullptr)
        busy_s->add((st.fwd_time + st.bwd_time + st.opt_time) * compute_scale);
    }

    const double end_arrive = st.sim.now();
    if (co_await at.end_barrier.arrive_and_wait(prev) !=
        sim::AbortableBarrier::Result::kOk) {
      at.mark_fault(st.sim.now());
      at.worker_exited();
      co_return;
    }
    if (lead) it_barrier += st.sim.now() - end_arrive;
    if (st.causal != nullptr && st.sim.now() > end_arrive)
      prev = st.causal->add_wait(obs::Category::kBarrier, "end_barrier",
                                 machine, local, iter, end_arrive,
                                 st.sim.now(), prev,
                                 /*cause=*/at.end_barrier.last_token());

    // Iteration committed.
    at.completed_through = std::max(at.completed_through, iter + 1);
    at.last_commit_time = st.sim.now();
    if (lead) {
      if (st.causal != nullptr)
        st.causal->mark_iteration(iter, measured, rework, iter_start,
                                  st.sim.now(), prev);
      st.high_water = std::max(st.high_water, iter + 1);
      if (wrote_checkpoint) {
        st.last_ckpt_time = st.sim.now();
        st.last_ckpt_iter = iter + 1;
        ++st.checkpoints_written;
        st.checkpoint_seconds += ft.checkpoint_write_s;
      }
      if (rework) {
        st.fault_rework_seconds += st.sim.now() - iter_start;
      } else if (iter >= st.config.warmup_iterations) {
        st.iter_times.add(st.sim.now() - iter_start);
        if (st.h_iter != nullptr) st.h_iter->observe(st.sim.now() - iter_start);
      }
      if (st.config.observer != nullptr) {
        IterationSample sample;
        sample.iteration = iter;
        sample.attempt = static_cast<int>(st.attempts.size()) - 1;
        sample.measured = measured;
        sample.rework = rework;
        sample.start_s = iter_start;
        sample.end_s = st.sim.now();
        sample.total_s = st.sim.now() - iter_start;
        sample.data_wait_s = it_data_wait;
        sample.compute_s = it_compute;
        sample.comm_tail_s = it_comm_tail;
        sample.barrier_s = it_barrier;
        sample.checkpoint_s = it_checkpoint;
        sample.workers = static_cast<int>(at.gpus.size());
        st.config.observer->on_iteration(sample);
      }
      // Per-iteration counter-track samples: event-queue depth, in-flight
      // flows, and the lead machine's host-bridge / NIC utilization over
      // the just-finished iteration, all rendered as graphs by the viewer.
      if (st.config.trace != nullptr) {
        const double now = st.sim.now();
        st.config.trace->add_counter(
            "sim_queue_depth", now, static_cast<double>(st.sim.queue_depth()),
            machine);
        st.config.trace->add_counter(
            "active_flows", now, static_cast<double>(st.net.active_flows()),
            machine);
        const hw::Machine& m0 = st.cluster.machine(machine);
        const double dt = now - st.prev_sample_time;
        if (dt > 0.0) {
          const double bridge = m0.host_bridge()->bytes_carried();
          st.config.trace->add_counter(
              "host_bridge_util_pct", now,
              (bridge - st.prev_bridge_bytes) /
                  (m0.host_bridge()->capacity() * dt) * 100.0,
              machine);
          st.prev_bridge_bytes = bridge;
          if (m0.nic_tx() != nullptr) {
            const double nic = m0.nic_tx()->bytes_carried();
            st.config.trace->add_counter(
                "nic_tx_util_pct", now,
                (nic - st.prev_nic_bytes) / (m0.nic_tx()->capacity() * dt) *
                    100.0,
                machine);
            st.prev_nic_bytes = nic;
          }
          st.prev_sample_time = now;
        }
      }
    }
  }
  at.worker_exited();
}

// Spawns the pipeline + worker group for one attempt. Spawn order matters
// for deterministic event sequencing and mirrors the original layout:
// loaders and H2D stages first, then workers.
void launch_attempt(RunState& st, Attempt& at) {
  if (!st.config.synthetic_data) {
    at.produced.assign(at.gpus.size(), 0);
    for (std::size_t i = 0; i < at.gpus.size(); ++i) {
      at.boxes.push_back(std::make_unique<sim::Mailbox<int>>(
          st.sim, static_cast<std::size_t>(st.config.prefetch_depth)));
      at.device_boxes.push_back(std::make_unique<sim::Mailbox<int>>(st.sim, 2));
      for (int w = 0; w < st.config.loader_workers_per_gpu; ++w)
        st.sim.spawn(loader(st, at, i));
      st.sim.spawn(h2d_stage(st, at, i));
    }
  }
  for (std::size_t i = 0; i < at.gpus.size(); ++i)
    st.sim.spawn(worker(st, at, i));
}

// Supervises the run: executes attempts until the iteration window is
// complete, applying the configured recovery policy after every fault.
sim::Task<void> orchestrate(RunState& st) {
  const auto& ft = st.config.fault_tolerance;
  std::vector<hw::GpuRef> participants = st.all_gpus;
  int next_start = 0;
  int transient_retries = 0;

  while (true) {
    st.attempts.push_back(std::make_unique<Attempt>(st, participants, next_start,
                                                    st.config.iterations));
    Attempt& at = *st.attempts.back();
    launch_attempt(st, at);
    co_await at.done.wait();
    st.gpus_at_end = static_cast<int>(at.gpus.size());
    if (!at.aborted) break;

    // --- Fault detected: decide how to continue. ---
    const faults::FaultState& fs = *ft.faults;
    const double detect = at.detected_time.value_or(at.last_death_time);
    std::vector<int> dead;
    {
      std::set<int> machines;
      for (const auto& g : at.gpus) machines.insert(g.machine);
      for (int m : machines)
        if (fs.crashed(m, detect)) dead.push_back(m);
    }

    RecoveryRecord rec;
    rec.time_s = detect;
    rec.at_iteration = at.completed_through;
    rec.policy = ft.policy;
    rec.workers_before = static_cast<int>(at.gpus.size());

    if (dead.empty()) {
      // Watchdog fired with every machine healthy: the timeout is shorter
      // than a legitimate iteration (e.g. an extreme straggler window).
      // Retry from the last commit, but refuse to spin forever.
      if (++transient_retries > 3)
        throw std::runtime_error(
            "Trainer: barrier watchdog fired repeatedly with no crashed "
            "machine; barrier_timeout_s is too small for this workload");
      next_start = at.completed_through;
      rec.workers_after = rec.workers_before;
    } else if (ft.policy == RecoveryPolicy::kCheckpointRestart) {
      // Wait out the reprovision of every lost machine, then replay from
      // the last durable checkpoint with the full participant set.
      double resume = detect;
      for (int m : dead) resume = std::max(resume, fs.repair_time(m, detect));
      if (resume > st.sim.now()) co_await st.sim.delay(resume - st.sim.now());
      next_start = st.last_ckpt_iter;
      rec.rework_iterations = at.completed_through - st.last_ckpt_iter;
      rec.workers_after = rec.workers_before;
    } else {
      // kShrink: drop the dead machines' workers and continue from the last
      // committed iteration on the rebuilt (smaller) ring.
      std::vector<hw::GpuRef> survivors;
      for (const auto& g : participants)
        if (std::find(dead.begin(), dead.end(), g.machine) == dead.end())
          survivors.push_back(g);
      if (static_cast<int>(survivors.size()) < ft.min_shrink_workers) {
        // Fleet fell below the shrink floor (possibly to zero survivors):
        // the smaller ring would be undefined, so this episode degrades to
        // checkpoint-restart — wait out every reprovision and replay from
        // the last durable checkpoint with the full participant set.
        util::log_warn("trainer: shrink would leave ", survivors.size(),
                       " worker(s), below the floor of ", ft.min_shrink_workers,
                       "; degrading this recovery to checkpoint-restart");
        rec.policy = RecoveryPolicy::kCheckpointRestart;
        double resume = detect;
        for (int m : dead) resume = std::max(resume, fs.repair_time(m, detect));
        if (resume > st.sim.now()) co_await st.sim.delay(resume - st.sim.now());
        next_start = st.last_ckpt_iter;
        rec.rework_iterations = at.completed_through - st.last_ckpt_iter;
        rec.workers_after = rec.workers_before;
        if (st.metrics != nullptr)
          st.metrics->counter("faults/shrink_floor_degradations").increment();
      } else {
        participants = std::move(survivors);
        next_start = at.completed_through;
        rec.workers_after = static_cast<int>(participants.size());
      }
    }

    rec.wait_seconds = st.sim.now() - at.last_commit_time;
    st.fault_wait_seconds += rec.wait_seconds;
    util::log_warn("trainer: fault recovery at t=", rec.time_s,
                   "s iter ", rec.at_iteration, ", workers ",
                   rec.workers_before, "->", rec.workers_after, ", waited ",
                   rec.wait_seconds, "s");
    st.recoveries.push_back(rec);
    if (st.config.observer != nullptr) st.config.observer->on_recovery(rec);
    if (st.causal != nullptr)
      st.causal->add_fault_window(
          at.last_commit_time, st.sim.now(),
          dead.empty() ? "transient-retry"
          : rec.policy == RecoveryPolicy::kCheckpointRestart ? "restart"
                                                             : "shrink");

    // Telemetry: one instant at the detection, one span covering the whole
    // recovery episode (detection gap + reprovision wait), and episode
    // counters.
    if (st.config.trace != nullptr) {
      const char* label = dead.empty() ? "recovery:transient-retry"
                          : rec.policy == RecoveryPolicy::kCheckpointRestart
                              ? "recovery:restart"
                              : "recovery:shrink";
      st.config.trace->add_instant("fault detected", "fault", detect,
                                   st.trace_pid, 90);
      st.config.trace->add_span(label, "fault", detect, st.sim.now() - detect,
                                st.trace_pid, 90);
    }
    if (st.metrics != nullptr) {
      st.metrics->counter("faults/detections").increment();
      st.metrics->counter("faults/recovery_episodes").increment();
      st.metrics->counter("faults/recovery_wait_s").add(rec.wait_seconds);
      st.metrics->counter("faults/rework_iterations").add(rec.rework_iterations);
    }
  }
  st.finished = true;
}

}  // namespace

Trainer::Trainer(sim::Simulator& sim, hw::FlowNetwork& net, hw::Cluster& cluster,
                 const dnn::Model& model, const dnn::Dataset& dataset,
                 TrainConfig config)
    : sim_(sim),
      net_(net),
      cluster_(cluster),
      model_(model),
      dataset_(dataset),
      config_(std::move(config)) {}

TrainResult Trainer::run() {
  config_.validate();

  std::vector<hw::GpuRef> gpus =
      config_.use_gpus.empty() ? cluster_.ring_order() : config_.use_gpus;
  if (gpus.empty()) throw std::invalid_argument("Trainer: no GPUs to train on");
  for (const auto& g : gpus) {
    if (g.machine < 0 || g.machine >= static_cast<int>(cluster_.num_machines()) ||
        g.local < 0 || g.local >= cluster_.machine(g.machine).num_gpus())
      throw std::out_of_range("Trainer: GPU reference out of range");
  }

  const hw::GpuSpec& gpu = cluster_.machine(gpus.front().machine).gpu();
  if (config_.enforce_memory) {
    double need = model_.train_memory_bytes(config_.per_gpu_batch);
    if (need > gpu.memory_bytes)
      throw ModelDoesNotFit(model_.name(), config_.per_gpu_batch, need,
                            gpu.memory_bytes);
  }

  RunState st(sim_, net_, cluster_, config_, std::move(gpus));
  st.trace_pid = st.all_gpus.front().machine;

  if (config_.trace != nullptr) {
    // One pid track group per machine (process_name metadata), one tid
    // track per GPU worker, so multi-machine traces read as a grid of
    // machines × workers rather than a single anonymous lead track.
    std::set<int> machines_used;
    for (const auto& g : st.all_gpus) machines_used.insert(g.machine);
    for (int m : machines_used)
      config_.trace->name_process(
          m, cluster_.machine(m).config().name + " (machine " +
                 std::to_string(m) + ")");
    for (const auto& g : st.all_gpus) {
      std::string label = "gpu" + std::to_string(g.local) + " worker";
      if (g == st.all_gpus.front()) label += " (lead)";
      config_.trace->name_track(g.machine, g.local, std::move(label));
      if (!config_.synthetic_data)
        config_.trace->name_track(g.machine, 50 + g.local,
                                  "h2d stage (gpu" + std::to_string(g.local) +
                                      ")");
    }
    config_.trace->name_track(st.trace_pid, 100, "comm stream");
    if (config_.fault_tolerance.enabled())
      config_.trace->name_track(st.trace_pid, 90, "faults & recovery");
  }

  st.steps = model_.backward_steps();
  st.flush_bytes.assign(st.steps.size(), 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < st.steps.size(); ++i) {
    acc += st.steps[i].grad_bytes;
    if (config_.bucket_bytes <= 0.0 || acc >= config_.bucket_bytes) {
      st.flush_bytes[i] = acc;
      acc = 0.0;
    }
  }
  if (acc > 0.0 && !st.flush_bytes.empty()) st.flush_bytes.back() += acc;
  for (double b : st.flush_bytes)
    if (b > 0.0) ++st.num_buckets;

  const double batch = static_cast<double>(config_.per_gpu_batch);
  st.batch_over_flops = batch / gpu.effective_flops;
  st.fwd_time = model_.fwd_flops_per_sample() * st.batch_over_flops;
  st.bwd_time = model_.bwd_flops_per_sample() * st.batch_over_flops;
  st.opt_time = config_.optimizer_overhead * (st.fwd_time + st.bwd_time);
  st.h2d_bytes = model_.input_tensor_bytes() * batch;
  st.batch_disk_bytes = dataset_.bytes_per_sample() * batch;
  st.prep_seconds = dataset_.prep_cpu_seconds_per_sample * batch;

  if (config_.cold_cache) {
    st.miss_fraction = 1.0;
  } else {
    const hw::Machine& m0 = cluster_.machine(st.all_gpus.front().machine);
    double cache_bytes = m0.config().dram_bytes * 0.85;
    st.miss_fraction =
        1.0 - std::min(1.0, cache_bytes / std::max(1.0, dataset_.total_bytes));
  }

  const bool fault_mode = config_.fault_tolerance.enabled();
  sim_.spawn(orchestrate(st));
  sim_.run();
  // A healthy run must drain every coroutine. A faulted run legitimately
  // leaves parked frames behind (dead workers, stranded loaders of aborted
  // attempts) — there the orchestrator reaching the end is the liveness
  // criterion.
  if (fault_mode ? !st.finished : !sim_.all_processes_done())
    throw std::logic_error("Trainer: simulation deadlocked");

  if (config_.metrics != nullptr) {
    telemetry::MetricsRegistry& m = *config_.metrics;
    const double total = sim_.now();
    // Per-GPU utilization from the busy seconds the workers accumulated.
    for (const auto& g : st.all_gpus) {
      std::string prefix = "machine" + std::to_string(g.machine) + "/gpu" +
                           std::to_string(g.local) + "/";
      double busy = m.counter(prefix + "busy_s").value();
      m.gauge(prefix + "util_pct").set(total > 0.0 ? busy / total * 100.0 : 0.0);
    }
    // Per-link transfer totals and occupancy (every link of the cluster:
    // PCIe lanes, host bridges, NVLink edges, NICs, fabric, SSD channels).
    for (const hw::Link* l : net_.links()) {
      std::string prefix = "hw/" + l->name() + "/";
      m.gauge(prefix + "bytes_carried").set(l->bytes_carried());
      m.gauge(prefix + "busy_s").set(l->busy_seconds());
      m.gauge(prefix + "util_pct")
          .set(total > 0.0 ? l->busy_seconds() / total * 100.0 : 0.0);
    }
    if (!config_.synthetic_data) {
      m.gauge("ddl/data/cache_hit_rate").set(1.0 - st.miss_fraction);
      if (st.g_prefetch_depth != nullptr) {
        // Close the occupancy window at the end of the run so the mean
        // covers the full pipeline lifetime.
        st.g_prefetch_depth->set(total, st.g_prefetch_depth->current());
        m.gauge("ddl/pipeline/occupancy_pct")
            .set(st.g_prefetch_depth->time_weighted_mean() /
                 static_cast<double>(config_.prefetch_depth) * 100.0);
      }
    }
    if (fault_mode) {
      m.counter("ddl/checkpoint/count").add(st.checkpoints_written);
      m.counter("ddl/checkpoint/write_s").add(st.checkpoint_seconds);
      m.counter("faults/lost_work_s")
          .add(st.fault_wait_seconds + st.fault_rework_seconds);
      m.counter("faults/rework_s").add(st.fault_rework_seconds);
    }
    // Simulator internals. Event counts and queue depths are deterministic;
    // anything wall-clock derived is registered volatile so deterministic
    // snapshots can exclude it.
    m.gauge("sim/events_executed")
        .set(static_cast<double>(sim_.events_executed()));
    m.gauge("sim/max_queue_depth")
        .set(static_cast<double>(sim_.max_queue_depth()));
    m.gauge("sim/sim_time_s").set(total);
    m.gauge("sim/wall_time_s", /*volatile_metric=*/true)
        .set(sim_.wall_seconds());
    m.gauge("sim/sim_per_wall_ratio", /*volatile_metric=*/true)
        .set(sim_.wall_seconds() > 0.0 ? total / sim_.wall_seconds() : 0.0);
  }

  TrainResult result;
  result.measured_iterations = static_cast<int>(st.iter_times.count());
  result.window_time = 0.0;
  for (double t : st.iter_times.samples()) result.window_time += t;
  result.per_iteration = st.iter_times.mean();
  double n = std::max<std::size_t>(1, st.iter_times.count());
  result.data_wait = st.sum_data_wait / n;
  result.h2d_time = st.sum_h2d / n;
  result.compute_time = st.sum_compute / n;
  result.comm_tail = st.sum_comm_tail / n;
  result.gpus_used = static_cast<int>(st.all_gpus.size());
  result.gpus_at_end = fault_mode ? st.gpus_at_end : result.gpus_used;
  result.fault_stall = st.fault_wait_seconds + st.fault_rework_seconds;
  result.checkpoint_seconds = st.checkpoint_seconds;
  result.checkpoints_written = st.checkpoints_written;
  result.recoveries = std::move(st.recoveries);
  return result;
}

int Trainer::max_batch_that_fits(const dnn::Model& model, const hw::GpuSpec& gpu) {
  int best = 0;
  for (int b = 1; b <= 1024; b *= 2) {
    if (model.train_memory_bytes(b) <= gpu.memory_bytes)
      best = b;
    else
      break;
  }
  return best;
}

}  // namespace stash::ddl
