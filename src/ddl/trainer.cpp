#include "ddl/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "coll/comm_stream.h"
#include "coll/ring_allreduce.h"
#include "sim/mailbox.h"
#include "sim/sync.h"
#include "util/stats.h"

namespace stash::ddl {

ModelDoesNotFit::ModelDoesNotFit(const std::string& model, int batch, double need,
                                 double have)
    : std::runtime_error("model " + model + " with per-GPU batch " +
                         std::to_string(batch) + " needs " + std::to_string(need) +
                         " bytes but the GPU has " + std::to_string(have)),
      needed_bytes(need),
      available_bytes(have) {}

namespace {

struct Attempt;

// Everything the worker/loader coroutines share. Lives on Trainer::run()'s
// stack and outlives sim.run(), so references into it are safe. Fault
// recovery re-runs the worker group as a sequence of "attempts"; attempt
// state is arena-allocated here because coroutines parked in an aborted
// attempt (dead workers, stranded loaders) still reference it until the
// Simulator reclaims them.
struct RunState {
  sim::Simulator& sim;
  hw::FlowNetwork& net;
  hw::Cluster& cluster;
  const TrainConfig& config;

  std::vector<hw::GpuRef> all_gpus;  // the configured participant set
  int trace_pid = 0;

  // Precomputed per-iteration quantities.
  std::vector<dnn::Model::BackwardStep> steps;
  std::vector<double> flush_bytes;  // per-step all-reduce flush (0 = none)
  std::size_t num_buckets = 0;
  double fwd_time = 0.0;
  double bwd_time = 0.0;
  double opt_time = 0.0;
  double batch_over_flops = 0.0;  // batch / gpu_flops
  double h2d_bytes = 0.0;
  double batch_disk_bytes = 0.0;
  double prep_seconds = 0.0;
  double miss_fraction = 0.0;

  coll::CollectiveContext coll_ctx;
  coll::CommStream stream;

  std::vector<std::unique_ptr<Attempt>> attempts;

  // Measurements (lead worker, post-warmup).
  util::SampleSet iter_times;
  double sum_data_wait = 0.0;
  double sum_h2d = 0.0;
  double sum_compute = 0.0;
  double sum_comm_tail = 0.0;

  // Fault-tolerance progress. high_water is the furthest committed
  // iteration across all attempts; iterations below it in a later attempt
  // are rework (charged to the fault stall, excluded from statistics).
  int high_water = 0;
  double last_ckpt_time = 0.0;  // run start counts as checkpoint zero
  int last_ckpt_iter = 0;
  int checkpoints_written = 0;
  double checkpoint_seconds = 0.0;
  double fault_wait_seconds = 0.0;
  double fault_rework_seconds = 0.0;
  std::vector<RecoveryRecord> recoveries;
  bool finished = false;
  int gpus_at_end = 0;

  RunState(sim::Simulator& s, hw::FlowNetwork& n, hw::Cluster& c,
           const TrainConfig& cfg, std::vector<hw::GpuRef> gpu_list)
      : sim(s),
        net(n),
        cluster(c),
        config(cfg),
        all_gpus(std::move(gpu_list)),
        coll_ctx{s, n, c, cfg.collective},
        stream(s) {}
};

// One contiguous execution of the worker group: a participant set, an
// iteration range, and the barriers/mailboxes that tie them together. A
// healthy run is exactly one attempt; every recovery opens a new one.
struct Attempt {
  std::vector<hw::GpuRef> gpus;
  int start_iter;
  int end_iter;
  int rework_limit;  // iterations below this are replay of committed work

  sim::AbortableBarrier start_barrier;
  sim::AbortableBarrier end_barrier;
  // Host-side prefetch queue (loaders -> H2D stage) and device-side double
  // buffer (H2D stage -> worker), per participant.
  std::vector<std::unique_ptr<sim::Mailbox<int>>> boxes;
  std::vector<std::unique_ptr<sim::Mailbox<int>>> device_boxes;
  std::vector<int> produced;

  sim::Event done;
  std::size_t live_workers;
  bool aborted = false;
  std::optional<double> detected_time;  // first watchdog/abort observation
  double last_death_time = 0.0;         // silent crash exits (no survivor saw it)
  int completed_through;    // first global iteration index NOT committed
  double last_commit_time;  // when the last end barrier released

  // One-round analysis of this attempt's ring, used to price the
  // synchronous (non-overlapped) share of each collective without
  // double-simulating: per hop, its link path; per link, how many times a
  // round traverses it. The slowest hop's rate is evaluated against
  // *current* capacities at each flush so time-varying QoS (and injected
  // link faults) are felt.
  double round_latency = 0.0;
  std::vector<std::vector<hw::Link*>> ring_hop_paths;
  std::unordered_map<const hw::Link*, int> ring_traversals;

  Attempt(RunState& st, std::vector<hw::GpuRef> parts, int from, int to)
      : gpus(std::move(parts)),
        start_iter(from),
        end_iter(to),
        rework_limit(st.high_water),
        start_barrier(st.sim, gpus.size(), st.config.fault_tolerance.enabled()
                                               ? st.config.fault_tolerance.barrier_timeout_s
                                               : 0.0),
        end_barrier(st.sim, gpus.size(), st.config.fault_tolerance.enabled()
                                             ? st.config.fault_tolerance.barrier_timeout_s
                                             : 0.0),
        done(st.sim),
        live_workers(gpus.size()),
        completed_through(from),
        last_commit_time(st.sim.now()) {
    std::set<int> machines_used;
    for (const auto& g : gpus) machines_used.insert(g.machine);
    round_latency = machines_used.size() > 1
                        ? st.config.collective.inter_round_latency
                        : st.config.collective.intra_round_latency;
    if (gpus.size() > 1) {
      for (std::size_t i = 0; i < gpus.size(); ++i) {
        auto path = st.cluster.path(gpus[i], gpus[(i + 1) % gpus.size()]);
        for (const hw::Link* l : path) ++ring_traversals[l];
        ring_hop_paths.push_back(std::move(path));
      }
    }
  }

  double ring_seconds_per_chunk_byte() const {
    double slowest = std::numeric_limits<double>::infinity();
    for (const auto& path : ring_hop_paths) {
      double rate = std::numeric_limits<double>::infinity();
      for (const hw::Link* l : path)
        rate = std::min(rate, l->capacity() / ring_traversals.at(l));
      slowest = std::min(slowest, rate);
    }
    return std::isfinite(slowest) && slowest > 0.0 ? 1.0 / slowest : 0.0;
  }

  // Analytic cost of one all-reduce of `bytes` over the participant ring.
  double estimate_collective_seconds(double bytes) const {
    auto k = static_cast<double>(gpus.size());
    if (k < 2) return 0.0;
    double rounds = 2.0 * (k - 1.0);
    return rounds * (round_latency + (bytes / k) * ring_seconds_per_chunk_byte());
  }

  // A survivor observed the fault (barrier timeout or abort). Kills both
  // barriers so workers still in flight unwind at their next arrival
  // instead of waiting out another watchdog window.
  void mark_fault(double now) {
    if (!detected_time) detected_time = now;
    aborted = true;
    start_barrier.abort();
    end_barrier.abort();
  }

  // A worker on a crashed machine exits silently: no barrier abort (dead
  // processes don't notify anyone) — survivors find out via the watchdog.
  void note_death(double now) {
    aborted = true;
    last_death_time = now;
  }

  void worker_exited() {
    if (--live_workers == 0) done.trigger();
  }
};

// Records a span on the shared trace if one is attached. Track ids: pid is
// the machine of the lead GPU, tid the local GPU index; the comm stream
// uses tid 100.
void trace_span(RunState& st, const char* name, const char* category,
                double start_s, int tid) {
  if (st.config.trace == nullptr) return;
  st.config.trace->add_span(name, category, start_s, st.sim.now() - start_s,
                            st.trace_pid, tid);
}

sim::Task<void> run_one_allreduce(RunState& st, Attempt& at, double bytes,
                                  std::shared_ptr<sim::Latch> latch) {
  const double start = st.sim.now();
  co_await st.stream.enqueue([&st, &at, bytes]() -> sim::Task<void> {
    return coll::ring_allreduce_over(st.coll_ctx, at.gpus, bytes, at.round_latency);
  });
  trace_span(st, "allreduce", "comm", start, 100);
  latch->count_down();
}

sim::Task<void> loader(RunState& st, Attempt& at, std::size_t gpu_idx) {
  hw::Machine& mach = st.cluster.machine(at.gpus[gpu_idx].machine);
  const int machine = at.gpus[gpu_idx].machine;
  const faults::FaultState* fs = st.config.fault_tolerance.faults;
  const int needed = at.end_iter - at.start_iter;
  while (at.produced[gpu_idx] < needed) {
    if (fs != nullptr && fs->crashed(machine, st.sim.now())) co_return;
    ++at.produced[gpu_idx];
    double miss_bytes = st.batch_disk_bytes * st.miss_fraction;
    if (miss_bytes > 0.0) co_await mach.storage().read(miss_bytes);
    if (st.prep_seconds > 0.0) co_await mach.cpus().run(st.prep_seconds);
    co_await at.boxes[gpu_idx]->put(1);
  }
}

// Uploads prefetched batches into the GPU's double buffer.
sim::Task<void> h2d_stage(RunState& st, Attempt& at, std::size_t idx) {
  hw::Machine& mach = st.cluster.machine(at.gpus[idx].machine);
  const int local_gpu = at.gpus[idx].local;
  for (int iter = at.start_iter; iter < at.end_iter; ++iter) {
    co_await at.boxes[idx]->get();
    const double start = st.sim.now();
    co_await st.net.transfer(st.h2d_bytes, mach.h2d_path(local_gpu));
    if (idx == 0) {
      if (iter >= st.config.warmup_iterations && iter >= at.rework_limit)
        st.sum_h2d += st.sim.now() - start;
      trace_span(st, "h2d", "pipeline", start, 50);
    }
    co_await at.device_boxes[idx]->put(1);
  }
}

sim::Task<void> worker(RunState& st, Attempt& at, std::size_t idx) {
  const bool lead = idx == 0;
  const int machine = at.gpus[idx].machine;
  const double het_scale = st.config.straggler.scale_for(idx);
  const faults::FaultState* fs = st.config.fault_tolerance.faults;
  const auto& ft = st.config.fault_tolerance;

  for (int iter = at.start_iter; iter < at.end_iter; ++iter) {
    // A revoked machine's process dies between iterations: it stops
    // arriving at barriers and the survivors' watchdog does the detection.
    if (fs != nullptr && fs->crashed(machine, st.sim.now())) {
      at.note_death(st.sim.now());
      at.worker_exited();
      co_return;
    }

    const bool rework = iter < at.rework_limit;
    const bool measured =
        lead && !rework && iter >= st.config.warmup_iterations;
    const double iter_start = st.sim.now();
    const double compute_scale =
        het_scale *
        (fs != nullptr ? fs->compute_scale(static_cast<int>(idx), st.sim.now())
                       : 1.0);

    if (!st.config.synthetic_data) {
      const double wait_start = st.sim.now();
      co_await at.device_boxes[idx]->get();
      if (measured) st.sum_data_wait += st.sim.now() - wait_start;
      if (lead) trace_span(st, "data_wait", "pipeline", wait_start, 0);
    }

    if (co_await at.start_barrier.arrive_and_wait() !=
        sim::AbortableBarrier::Result::kOk) {
      at.mark_fault(st.sim.now());
      at.worker_exited();
      co_return;
    }

    // Gradient synchronization happens this iteration unless local SGD is
    // deferring it; gradients may be compressed before exchange.
    const bool syncs = st.config.comm_reduction.syncs_on(iter);
    const double bytes_factor = st.config.comm_reduction.bytes_factor();

    bool wrote_checkpoint = false;
    if (lead) {
      const double compute_start = st.sim.now();
      co_await st.sim.delay(st.fwd_time * compute_scale);
      trace_span(st, "forward", "compute", compute_start, 0);
      const double backward_start = st.sim.now();

      const double overlap = st.config.collective.overlap_fraction;
      const bool exchanges = at.gpus.size() > 1 && syncs;
      const bool has_async = exchanges && overlap > 0.0;
      auto latch = std::make_shared<sim::Latch>(st.sim,
                                                has_async ? st.num_buckets : 0);
      for (std::size_t s = 0; s < st.steps.size(); ++s) {
        co_await st.sim.delay(st.steps[s].flops_per_sample * st.batch_over_flops *
                              compute_scale);
        if (exchanges && st.flush_bytes[s] > 0.0) {
          // Bucket flush. The launch overhead (the paper's per-layer tau)
          // and the non-overlapped share of the transfer block the compute
          // stream; the overlapped share proceeds as real flows on the
          // comm stream, contending with everything else.
          double wire_bytes = st.flush_bytes[s] * bytes_factor;
          double sync_cost =
              (1.0 - overlap) * at.estimate_collective_seconds(wire_bytes);
          co_await st.sim.delay(st.config.collective.launch_blocking_latency +
                                sync_cost);
          if (has_async)
            st.sim.spawn(run_one_allreduce(st, at, overlap * wire_bytes, latch));
        }
      }
      const double backward_end = st.sim.now();
      trace_span(st, "backward+flush", "compute", backward_start, 0);
      co_await latch->wait();
      const double tail = st.sim.now() - backward_end;
      trace_span(st, "comm_tail", "comm", backward_end, 0);
      const double opt_start = st.sim.now();
      co_await st.sim.delay(st.opt_time);
      trace_span(st, "optimizer", "compute", opt_start, 0);
      if (measured) {
        st.sum_comm_tail += tail;
        st.sum_compute += (backward_end - compute_start) + st.opt_time;
      }
      // Periodic checkpoint: the lead pays the write stall before the end
      // barrier (so the whole group paces on it); the checkpoint only
      // becomes durable once this iteration commits.
      if (ft.enabled() &&
          st.sim.now() - st.last_ckpt_time >= ft.checkpoint_interval_s) {
        const double ckpt_start = st.sim.now();
        co_await st.sim.delay(ft.checkpoint_write_s);
        trace_span(st, "checkpoint", "pipeline", ckpt_start, 0);
        wrote_checkpoint = true;
      }
    } else {
      // Followers run the same compute schedule (possibly slower when
      // straggling); the end barrier paces everyone on the slowest party.
      co_await st.sim.delay((st.fwd_time + st.bwd_time + st.opt_time) *
                            compute_scale);
    }

    if (co_await at.end_barrier.arrive_and_wait() !=
        sim::AbortableBarrier::Result::kOk) {
      at.mark_fault(st.sim.now());
      at.worker_exited();
      co_return;
    }

    // Iteration committed.
    at.completed_through = std::max(at.completed_through, iter + 1);
    at.last_commit_time = st.sim.now();
    if (lead) {
      st.high_water = std::max(st.high_water, iter + 1);
      if (wrote_checkpoint) {
        st.last_ckpt_time = st.sim.now();
        st.last_ckpt_iter = iter + 1;
        ++st.checkpoints_written;
        st.checkpoint_seconds += ft.checkpoint_write_s;
      }
      if (rework) {
        st.fault_rework_seconds += st.sim.now() - iter_start;
      } else if (iter >= st.config.warmup_iterations) {
        st.iter_times.add(st.sim.now() - iter_start);
      }
    }
  }
  at.worker_exited();
}

// Spawns the pipeline + worker group for one attempt. Spawn order matters
// for deterministic event sequencing and mirrors the original layout:
// loaders and H2D stages first, then workers.
void launch_attempt(RunState& st, Attempt& at) {
  if (!st.config.synthetic_data) {
    at.produced.assign(at.gpus.size(), 0);
    for (std::size_t i = 0; i < at.gpus.size(); ++i) {
      at.boxes.push_back(std::make_unique<sim::Mailbox<int>>(
          st.sim, static_cast<std::size_t>(st.config.prefetch_depth)));
      at.device_boxes.push_back(std::make_unique<sim::Mailbox<int>>(st.sim, 2));
      for (int w = 0; w < st.config.loader_workers_per_gpu; ++w)
        st.sim.spawn(loader(st, at, i));
      st.sim.spawn(h2d_stage(st, at, i));
    }
  }
  for (std::size_t i = 0; i < at.gpus.size(); ++i)
    st.sim.spawn(worker(st, at, i));
}

// Supervises the run: executes attempts until the iteration window is
// complete, applying the configured recovery policy after every fault.
sim::Task<void> orchestrate(RunState& st) {
  const auto& ft = st.config.fault_tolerance;
  std::vector<hw::GpuRef> participants = st.all_gpus;
  int next_start = 0;
  int transient_retries = 0;

  while (true) {
    st.attempts.push_back(std::make_unique<Attempt>(st, participants, next_start,
                                                    st.config.iterations));
    Attempt& at = *st.attempts.back();
    launch_attempt(st, at);
    co_await at.done.wait();
    st.gpus_at_end = static_cast<int>(at.gpus.size());
    if (!at.aborted) break;

    // --- Fault detected: decide how to continue. ---
    const faults::FaultState& fs = *ft.faults;
    const double detect = at.detected_time.value_or(at.last_death_time);
    std::vector<int> dead;
    {
      std::set<int> machines;
      for (const auto& g : at.gpus) machines.insert(g.machine);
      for (int m : machines)
        if (fs.crashed(m, detect)) dead.push_back(m);
    }

    RecoveryRecord rec;
    rec.time_s = detect;
    rec.at_iteration = at.completed_through;
    rec.policy = ft.policy;
    rec.workers_before = static_cast<int>(at.gpus.size());

    if (dead.empty()) {
      // Watchdog fired with every machine healthy: the timeout is shorter
      // than a legitimate iteration (e.g. an extreme straggler window).
      // Retry from the last commit, but refuse to spin forever.
      if (++transient_retries > 3)
        throw std::runtime_error(
            "Trainer: barrier watchdog fired repeatedly with no crashed "
            "machine; barrier_timeout_s is too small for this workload");
      next_start = at.completed_through;
      rec.workers_after = rec.workers_before;
    } else if (ft.policy == RecoveryPolicy::kCheckpointRestart) {
      // Wait out the reprovision of every lost machine, then replay from
      // the last durable checkpoint with the full participant set.
      double resume = detect;
      for (int m : dead) resume = std::max(resume, fs.repair_time(m, detect));
      if (resume > st.sim.now()) co_await st.sim.delay(resume - st.sim.now());
      next_start = st.last_ckpt_iter;
      rec.rework_iterations = at.completed_through - st.last_ckpt_iter;
      rec.workers_after = rec.workers_before;
    } else {
      // kShrink: drop the dead machines' workers and continue from the last
      // committed iteration on the rebuilt (smaller) ring.
      std::vector<hw::GpuRef> survivors;
      for (const auto& g : participants)
        if (std::find(dead.begin(), dead.end(), g.machine) == dead.end())
          survivors.push_back(g);
      if (survivors.empty())
        throw std::runtime_error("Trainer: every worker was lost to faults");
      participants = std::move(survivors);
      next_start = at.completed_through;
      rec.workers_after = static_cast<int>(participants.size());
    }

    rec.wait_seconds = st.sim.now() - at.last_commit_time;
    st.fault_wait_seconds += rec.wait_seconds;
    st.recoveries.push_back(rec);
  }
  st.finished = true;
}

}  // namespace

Trainer::Trainer(sim::Simulator& sim, hw::FlowNetwork& net, hw::Cluster& cluster,
                 const dnn::Model& model, const dnn::Dataset& dataset,
                 TrainConfig config)
    : sim_(sim),
      net_(net),
      cluster_(cluster),
      model_(model),
      dataset_(dataset),
      config_(std::move(config)) {}

TrainResult Trainer::run() {
  config_.validate();

  std::vector<hw::GpuRef> gpus =
      config_.use_gpus.empty() ? cluster_.ring_order() : config_.use_gpus;
  if (gpus.empty()) throw std::invalid_argument("Trainer: no GPUs to train on");
  for (const auto& g : gpus) {
    if (g.machine < 0 || g.machine >= static_cast<int>(cluster_.num_machines()) ||
        g.local < 0 || g.local >= cluster_.machine(g.machine).num_gpus())
      throw std::out_of_range("Trainer: GPU reference out of range");
  }

  const hw::GpuSpec& gpu = cluster_.machine(gpus.front().machine).gpu();
  if (config_.enforce_memory) {
    double need = model_.train_memory_bytes(config_.per_gpu_batch);
    if (need > gpu.memory_bytes)
      throw ModelDoesNotFit(model_.name(), config_.per_gpu_batch, need,
                            gpu.memory_bytes);
  }

  RunState st(sim_, net_, cluster_, config_, std::move(gpus));
  st.trace_pid = st.all_gpus.front().machine;

  if (config_.trace != nullptr) {
    config_.trace->name_track(st.trace_pid, 0, "lead GPU worker");
    config_.trace->name_track(st.trace_pid, 50, "H2D stage (gpu 0)");
    config_.trace->name_track(st.trace_pid, 100, "comm stream");
  }

  st.steps = model_.backward_steps();
  st.flush_bytes.assign(st.steps.size(), 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < st.steps.size(); ++i) {
    acc += st.steps[i].grad_bytes;
    if (config_.bucket_bytes <= 0.0 || acc >= config_.bucket_bytes) {
      st.flush_bytes[i] = acc;
      acc = 0.0;
    }
  }
  if (acc > 0.0 && !st.flush_bytes.empty()) st.flush_bytes.back() += acc;
  for (double b : st.flush_bytes)
    if (b > 0.0) ++st.num_buckets;

  const double batch = static_cast<double>(config_.per_gpu_batch);
  st.batch_over_flops = batch / gpu.effective_flops;
  st.fwd_time = model_.fwd_flops_per_sample() * st.batch_over_flops;
  st.bwd_time = model_.bwd_flops_per_sample() * st.batch_over_flops;
  st.opt_time = config_.optimizer_overhead * (st.fwd_time + st.bwd_time);
  st.h2d_bytes = model_.input_tensor_bytes() * batch;
  st.batch_disk_bytes = dataset_.bytes_per_sample() * batch;
  st.prep_seconds = dataset_.prep_cpu_seconds_per_sample * batch;

  if (config_.cold_cache) {
    st.miss_fraction = 1.0;
  } else {
    const hw::Machine& m0 = cluster_.machine(st.all_gpus.front().machine);
    double cache_bytes = m0.config().dram_bytes * 0.85;
    st.miss_fraction =
        1.0 - std::min(1.0, cache_bytes / std::max(1.0, dataset_.total_bytes));
  }

  const bool fault_mode = config_.fault_tolerance.enabled();
  sim_.spawn(orchestrate(st));
  sim_.run();
  // A healthy run must drain every coroutine. A faulted run legitimately
  // leaves parked frames behind (dead workers, stranded loaders of aborted
  // attempts) — there the orchestrator reaching the end is the liveness
  // criterion.
  if (fault_mode ? !st.finished : !sim_.all_processes_done())
    throw std::logic_error("Trainer: simulation deadlocked");

  TrainResult result;
  result.measured_iterations = static_cast<int>(st.iter_times.count());
  result.window_time = 0.0;
  for (double t : st.iter_times.samples()) result.window_time += t;
  result.per_iteration = st.iter_times.mean();
  double n = std::max<std::size_t>(1, st.iter_times.count());
  result.data_wait = st.sum_data_wait / n;
  result.h2d_time = st.sum_h2d / n;
  result.compute_time = st.sum_compute / n;
  result.comm_tail = st.sum_comm_tail / n;
  result.gpus_used = static_cast<int>(st.all_gpus.size());
  result.gpus_at_end = fault_mode ? st.gpus_at_end : result.gpus_used;
  result.fault_stall = st.fault_wait_seconds + st.fault_rework_seconds;
  result.checkpoint_seconds = st.checkpoint_seconds;
  result.checkpoints_written = st.checkpoints_written;
  result.recoveries = std::move(st.recoveries);
  return result;
}

int Trainer::max_batch_that_fits(const dnn::Model& model, const hw::GpuSpec& gpu) {
  int best = 0;
  for (int b = 1; b <= 1024; b *= 2) {
    if (model.train_memory_bytes(b) <= gpu.memory_bytes)
      best = b;
    else
      break;
  }
  return best;
}

}  // namespace stash::ddl
