// Synchronous data-parallel training simulation (PyTorch DDP semantics).
//
// One coroutine per participating GPU. Per iteration every worker:
//   1. waits for a prefetched minibatch (real-data runs) and uploads it
//      over its PCIe path — contending with collective traffic;
//   2. synchronizes on a start barrier (synchronous data parallelism);
//   3. the lead worker then executes forward compute, a layer-by-layer
//      backward pass that flushes gradient buckets to ring all-reduce on a
//      FIFO CommStream as they fill (compute/communication overlap), waits
//      for the last all-reduce, and applies the optimizer;
//   4. everyone meets at an end barrier.
// Workers are identical and deterministic, so the lead's compute timeline
// stands for all of them while the collectives themselves move flows over
// every worker's links (that is where contention lives).
//
// The input pipeline runs `loader_workers_per_gpu` producer coroutines per
// GPU: each batch costs an SSD read for the cache-missing fraction of its
// samples, one vCPU for the decode/augment time, and a slot in the
// bounded prefetch mailbox.
#pragma once

#include <memory>

#include "cloud/instance.h"
#include "coll/collective.h"
#include "ddl/train_config.h"
#include "dnn/dataset.h"
#include "dnn/model.h"
#include "hw/flow_network.h"
#include "hw/topology.h"
#include "sim/simulator.h"

namespace stash::ddl {

// Thrown when the model + batch does not fit in a GPU's memory.
class ModelDoesNotFit : public std::runtime_error {
 public:
  ModelDoesNotFit(const std::string& model, int batch, double need, double have);
  double needed_bytes;
  double available_bytes;
};

class Trainer {
 public:
  Trainer(sim::Simulator& sim, hw::FlowNetwork& net, hw::Cluster& cluster,
          const dnn::Model& model, const dnn::Dataset& dataset, TrainConfig config);

  // Runs the configured window to completion and returns the measurements.
  // The Simulator must be freshly constructed (time starts at ~0).
  TrainResult run();

  // Largest per-GPU batch (power of two) that fits the given GPU's memory;
  // 0 if even batch 1 does not fit.
  static int max_batch_that_fits(const dnn::Model& model, const hw::GpuSpec& gpu);

 private:
  struct State;
  sim::Simulator& sim_;
  hw::FlowNetwork& net_;
  hw::Cluster& cluster_;
  const dnn::Model& model_;
  dnn::Dataset dataset_;
  TrainConfig config_;
};

}  // namespace stash::ddl
