#include "ddl/pipeline.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>

#include "coll/ring_allreduce.h"
#include "sim/mailbox.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "util/stats.h"

namespace stash::ddl {

double PipelinePlan::imbalance() const {
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (const auto& s : stages) {
    lo = std::min(lo, s.fwd_flops_per_sample);
    hi = std::max(hi, s.fwd_flops_per_sample);
  }
  return lo > 0.0 ? hi / lo : std::numeric_limits<double>::infinity();
}

PipelinePlan partition_model(const dnn::Model& model, int num_stages) {
  if (num_stages < 1) throw std::invalid_argument("partition_model: num_stages < 1");
  const auto& layers = model.layers();
  if (layers.size() < static_cast<std::size_t>(num_stages))
    throw std::invalid_argument("partition_model: fewer layers than stages");

  const double target = model.fwd_flops_per_sample() / num_stages;
  PipelinePlan plan;
  PipelineStage current;
  current.first_layer = 0;
  double acc = 0.0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    acc += layers[i].fwd_flops_per_sample;
    current.params += layers[i].params;
    std::size_t remaining_layers = layers.size() - i - 1;
    std::size_t remaining_stages =
        static_cast<std::size_t>(num_stages) - plan.stages.size() - 1;
    bool must_close = remaining_layers == remaining_stages;
    bool want_close = acc >= target && remaining_stages > 0;
    if ((must_close || want_close) && remaining_stages > 0) {
      current.last_layer = i;
      current.fwd_flops_per_sample = acc;
      current.bwd_flops_per_sample = 2.0 * acc;
      current.boundary_activation_bytes = layers[i].boundary_bytes();
      plan.stages.push_back(current);
      current = PipelineStage{};
      current.first_layer = i + 1;
      acc = 0.0;
    }
  }
  current.last_layer = layers.size() - 1;
  current.fwd_flops_per_sample = acc;
  current.bwd_flops_per_sample = 2.0 * acc;
  current.boundary_activation_bytes = 0.0;  // nothing beyond the last stage
  plan.stages.push_back(current);
  return plan;
}

double gpipe_bubble_fraction(int stages, int micro_batches) {
  if (stages < 1 || micro_batches < 1)
    throw std::invalid_argument("gpipe_bubble_fraction: invalid arguments");
  return static_cast<double>(stages - 1) /
         static_cast<double>(micro_batches + stages - 1);
}

namespace {

struct PipeState {
  sim::Simulator& sim;
  hw::FlowNetwork& net;
  hw::Cluster& cluster;
  const PipelineConfig& config;
  const PipelinePlan& plan;
  std::vector<hw::GpuRef> gpus;  // replica r, stage s -> gpus[r*S + s]
  double micro_samples = 0.0;
  double flops_to_seconds = 0.0;  // 1 / effective_flops
  coll::CollectiveContext coll_ctx;

  // Indexed like `gpus`: fwd_boxes[i] holds activations arriving at that
  // worker (from its previous stage); bwd_boxes[i] activation-gradients
  // (from its next stage).
  std::vector<std::unique_ptr<sim::Mailbox<int>>> fwd_boxes;
  std::vector<std::unique_ptr<sim::Mailbox<int>>> bwd_boxes;
  sim::Barrier iteration_barrier;
  util::SampleSet iter_times;

  // Causal sink; may be null. Barrier straggler provenance comes from the
  // barrier's own arrival tokens (sim::Barrier::last_token).
  obs::CausalLog* causal = nullptr;

  PipeState(sim::Simulator& s, hw::FlowNetwork& n, hw::Cluster& c,
            const PipelineConfig& cfg, const PipelinePlan& p,
            std::vector<hw::GpuRef> g)
      : sim(s),
        net(n),
        cluster(c),
        config(cfg),
        plan(p),
        gpus(std::move(g)),
        coll_ctx{s, n, c, cfg.collective, nullptr, cfg.causal},
        iteration_barrier(s, p.num_stages() * static_cast<std::size_t>(
                                                  cfg.replicas)),
        causal(cfg.causal) {}

  std::size_t worker_index(int replica, std::size_t stage) const {
    return static_cast<std::size_t>(replica) * plan.num_stages() + stage;
  }

  // The data-parallel peer group of stage s: one GPU per replica.
  std::vector<hw::GpuRef> stage_peers(std::size_t stage) const {
    std::vector<hw::GpuRef> peers;
    for (int r = 0; r < config.replicas; ++r)
      peers.push_back(gpus[worker_index(r, stage)]);
    return peers;
  }

  double peer_round_latency(const std::vector<hw::GpuRef>& peers) const {
    for (std::size_t i = 1; i < peers.size(); ++i)
      if (peers[i].machine != peers[0].machine)
        return config.collective.inter_round_latency;
    return config.collective.intra_round_latency;
  }
};

// Ships one boundary tensor to a neighbouring stage and deposits a token
// carrying the transfer's causal edge (or the producer's, with no log).
sim::Task<void> ship(PipeState& st, double bytes, hw::GpuRef from, hw::GpuRef to,
                     sim::Mailbox<int>& box, int src_edge) {
  const double start = st.sim.now();
  co_await st.sim.delay(st.config.stage_handoff_latency);
  co_await st.net.transfer(bytes, st.cluster.path(from, to));
  int edge = src_edge;
  if (st.causal != nullptr)
    edge = st.causal->add_activity(from.machine == to.machine
                                       ? obs::Category::kInterconnect
                                       : obs::Category::kNetwork,
                                   "stage_handoff", from.machine, from.local,
                                   st.causal->iteration(), start,
                                   st.sim.now(), src_edge);
  co_await box.put(edge);
}

sim::Task<void> stage_worker(PipeState& st, int replica, std::size_t s) {
  const PipelineStage& stage = st.plan.stages[s];
  const std::size_t S = st.plan.num_stages();
  const std::size_t self = st.worker_index(replica, s);
  const double fwd_t =
      stage.fwd_flops_per_sample * st.micro_samples * st.flops_to_seconds;
  const double bwd_t =
      stage.bwd_flops_per_sample * st.micro_samples * st.flops_to_seconds;
  const double opt_t = st.config.optimizer_overhead *
                       (fwd_t + bwd_t) * st.config.micro_batches;
  const double act_bytes = stage.boundary_activation_bytes * st.micro_samples;
  const double in_bytes =
      s > 0 ? st.plan.stages[s - 1].boundary_activation_bytes * st.micro_samples
            : 0.0;

  const hw::GpuRef me = st.gpus[self];
  int prev = -1;  // this worker's causal chain tail
  for (int iter = 0; iter < st.config.iterations; ++iter) {
    const double iter_start = st.sim.now();
    if (replica == 0 && s == 0 && st.causal != nullptr)
      st.causal->set_iteration(iter);
    // Forward flush: all micro-batches stream through.
    for (int m = 0; m < st.config.micro_batches; ++m) {
      if (s > 0) {
        const double wait_start = st.sim.now();
        const int in_edge = co_await st.fwd_boxes[self]->get();
        if (st.causal != nullptr && st.sim.now() > wait_start)
          prev = st.causal->add_wait(obs::Category::kPipeline, "stage_wait",
                                     me.machine, me.local, iter, wait_start,
                                     st.sim.now(), prev, /*cause=*/in_edge);
      }
      const double fwd_start = st.sim.now();
      co_await st.sim.delay(fwd_t);
      if (st.causal != nullptr)
        prev = st.causal->add_activity(obs::Category::kCompute, "pipe_fwd",
                                       me.machine, me.local, iter, fwd_start,
                                       st.sim.now(), prev);
      if (s + 1 < S)
        st.sim.spawn(ship(st, act_bytes, st.gpus[self], st.gpus[self + 1],
                          *st.fwd_boxes[self + 1], prev));
    }
    // Backward flush: gradients flow back in reverse stage order.
    for (int m = 0; m < st.config.micro_batches; ++m) {
      if (s + 1 < S) {
        const double wait_start = st.sim.now();
        const int in_edge = co_await st.bwd_boxes[self]->get();
        if (st.causal != nullptr && st.sim.now() > wait_start)
          prev = st.causal->add_wait(obs::Category::kPipeline, "stage_wait",
                                     me.machine, me.local, iter, wait_start,
                                     st.sim.now(), prev, /*cause=*/in_edge);
      }
      const double bwd_start = st.sim.now();
      co_await st.sim.delay(bwd_t);
      if (st.causal != nullptr)
        prev = st.causal->add_activity(obs::Category::kCompute, "pipe_bwd",
                                       me.machine, me.local, iter, bwd_start,
                                       st.sim.now(), prev);
      if (s > 0)
        st.sim.spawn(ship(st, in_bytes, st.gpus[self], st.gpus[self - 1],
                          *st.bwd_boxes[self - 1], prev));
    }
    // Hybrid parallelism: stage gradients are all-reduced across the
    // replicas before the optimizer step. Replica 0 drives the collective
    // (its flows cross every replica's links); the others synchronize at
    // the iteration barrier.
    if (st.config.replicas > 1 && replica == 0) {
      auto peers = st.stage_peers(s);
      if (st.causal != nullptr) st.causal->set_comm_chain(prev);
      co_await coll::ring_allreduce_over(st.coll_ctx, peers, stage.params * 4.0,
                                         st.peer_round_latency(peers));
      if (st.causal != nullptr) prev = st.causal->comm_chain();
    }
    const double opt_start = st.sim.now();
    co_await st.sim.delay(opt_t);
    if (st.causal != nullptr)
      prev = st.causal->add_activity(obs::Category::kCompute, "pipe_opt",
                                     me.machine, me.local, iter, opt_start,
                                     st.sim.now(), prev);
    const double barrier_arrive = st.sim.now();
    co_await st.iteration_barrier.arrive_and_wait(prev);
    if (st.causal != nullptr && st.sim.now() > barrier_arrive)
      prev = st.causal->add_wait(obs::Category::kBarrier, "iter_barrier",
                                 me.machine, me.local, iter, barrier_arrive,
                                 st.sim.now(), prev,
                                 /*cause=*/st.iteration_barrier.last_token());
    if (replica == 0 && s == 0) {
      if (st.causal != nullptr)
        st.causal->mark_iteration(iter, iter >= st.config.warmup_iterations,
                                  /*rework=*/false, iter_start, st.sim.now(),
                                  prev);
      if (iter >= st.config.warmup_iterations)
        st.iter_times.add(st.sim.now() - iter_start);
    }
  }
}

}  // namespace

namespace {
int stages_for(const hw::Cluster& cluster, const PipelineConfig& config) {
  config.validate();
  int total = cluster.total_gpus();
  if (total % config.replicas != 0)
    throw std::invalid_argument(
        "PipelineTrainer: GPU count not divisible by replicas");
  return total / config.replicas;
}
}  // namespace

PipelineTrainer::PipelineTrainer(sim::Simulator& sim, hw::FlowNetwork& net,
                                 hw::Cluster& cluster, const dnn::Model& model,
                                 PipelineConfig config)
    : sim_(sim),
      net_(net),
      cluster_(cluster),
      model_(model),
      config_(config),
      plan_(partition_model(model, stages_for(cluster, config))) {}

PipelineResult PipelineTrainer::run() {
  config_.validate();
  std::vector<hw::GpuRef> gpus = cluster_.ring_order();

  PipeState st(sim_, net_, cluster_, config_, plan_, gpus);
  st.micro_samples = static_cast<double>(config_.mini_batch) / config_.micro_batches;
  st.flops_to_seconds = 1.0 / cluster_.machine(0).gpu().effective_flops;
  const std::size_t S = plan_.num_stages();
  const std::size_t workers = S * static_cast<std::size_t>(config_.replicas);
  for (std::size_t i = 0; i < workers; ++i) {
    st.fwd_boxes.push_back(std::make_unique<sim::Mailbox<int>>(
        sim_, static_cast<std::size_t>(config_.micro_batches)));
    st.bwd_boxes.push_back(std::make_unique<sim::Mailbox<int>>(
        sim_, static_cast<std::size_t>(config_.micro_batches)));
  }
  for (int r = 0; r < config_.replicas; ++r)
    for (std::size_t s = 0; s < S; ++s) sim_.spawn(stage_worker(st, r, s));
  sim_.run();
  if (!sim_.all_processes_done())
    throw std::logic_error("PipelineTrainer: simulation deadlocked");

  PipelineResult result;
  result.per_iteration = st.iter_times.mean();
  result.measured_iterations = static_cast<int>(st.iter_times.count());
  result.stages = S;
  result.replicas = config_.replicas;
  // No-bubble bound: the bottleneck stage's compute across the mini-batch.
  double bottleneck = 0.0;
  for (const auto& s : plan_.stages)
    bottleneck = std::max(
        bottleneck, (s.fwd_flops_per_sample + s.bwd_flops_per_sample) *
                        static_cast<double>(config_.mini_batch) *
                        st.flops_to_seconds);
  result.ideal_per_iteration = bottleneck * (1.0 + config_.optimizer_overhead);
  result.bubble_fraction =
      result.per_iteration > 0.0
          ? std::max(0.0, 1.0 - result.ideal_per_iteration / result.per_iteration)
          : 0.0;
  return result;
}

}  // namespace stash::ddl
