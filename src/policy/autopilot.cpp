#include "policy/autopilot.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "cloud/instance.h"
#include "exec/thread_pool.h"
#include "plan/planner.h"
#include "stash/attribute.h"
#include "stash/session.h"
#include "util/json.h"
#include "util/log.h"
#include "util/rng.h"

namespace stash::policy {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kHold:
      return "hold";
    case PolicyKind::kShrink:
      return "shrink";
    case PolicyKind::kFallback:
      return "fallback";
    case PolicyKind::kMigrate:
      return "migrate";
    case PolicyKind::kAdaptive:
      return "adaptive";
  }
  return "?";
}

PolicyKind parse_policy(const std::string& name) {
  if (name == "hold") return PolicyKind::kHold;
  if (name == "shrink") return PolicyKind::kShrink;
  if (name == "fallback") return PolicyKind::kFallback;
  if (name == "migrate") return PolicyKind::kMigrate;
  if (name == "adaptive") return PolicyKind::kAdaptive;
  throw std::invalid_argument("unknown autopilot policy '" + name +
                              "' (expected hold|shrink|fallback|migrate|adaptive)");
}

const char* to_string(Action a) {
  switch (a) {
    case Action::kHold:
      return "hold";
    case Action::kShrink:
      return "shrink";
    case Action::kFallback:
      return "fallback";
    case Action::kMigrate:
      return "migrate";
    case Action::kFloor:
      return "floor";
  }
  return "?";
}

const char* to_string(Trigger t) {
  switch (t) {
    case Trigger::kRevocation:
      return "revocation";
    case Trigger::kStraggler:
      return "straggler";
    case Trigger::kBlameShift:
      return "blame-shift";
  }
  return "?";
}

const char* to_string(TriggerMode m) {
  return m == TriggerMode::kDetector ? "detector" : "threshold";
}

TriggerMode parse_trigger_mode(const std::string& name) {
  if (name == "threshold") return TriggerMode::kThreshold;
  if (name == "detector") return TriggerMode::kDetector;
  throw std::invalid_argument("unknown trigger mode '" + name +
                              "' (expected threshold|detector)");
}

std::string FleetShape::label() const {
  std::string alloc;
  if (spot_machines <= 0)
    alloc = "od";
  else if (spot_machines >= spec.count)
    alloc = "spot";
  else
    alloc = "spot" + std::to_string(spot_machines) + "+od" +
            std::to_string(ondemand_machines());
  return spec.label() + " [" + alloc + "]";
}

void AutopilotOptions::validate() const {
  if (epochs < 1)
    throw std::invalid_argument("AutopilotOptions: epochs must be >= 1");
  if (per_gpu_batch < 1)
    throw std::invalid_argument("AutopilotOptions: per_gpu_batch must be >= 1");
  if (budget_usd < 0.0 || !std::isfinite(budget_usd))
    throw std::invalid_argument(
        "AutopilotOptions: budget_usd must be finite and >= 0");
  if (deadline_hours < 0.0 || !std::isfinite(deadline_hours))
    throw std::invalid_argument(
        "AutopilotOptions: deadline_hours must be finite and >= 0");
  if (trials < 1)
    throw std::invalid_argument("AutopilotOptions: trials must be >= 1");
  if (plan_trials < 1)
    throw std::invalid_argument("AutopilotOptions: plan_trials must be >= 1");
  if (!initial_spec.instance.empty() && initial_spec.count < 1)
    throw std::invalid_argument(
        "AutopilotOptions: a pinned initial_spec needs count >= 1");
  if (initial_spot_machines < -1)
    throw std::invalid_argument(
        "AutopilotOptions: initial_spot_machines must be >= -1 (-1 = all)");
  if (floor_machines < 1)
    throw std::invalid_argument(
        "AutopilotOptions: floor_machines must be >= 1 (the degradation floor "
        "must be able to make progress)");
  if (min_machines < 1)
    throw std::invalid_argument("AutopilotOptions: min_machines must be >= 1");
  if (max_retries < 1)
    throw std::invalid_argument("AutopilotOptions: max_retries must be >= 1");
  if (!(backoff_base_s > 0.0) || !std::isfinite(backoff_base_s))
    throw std::invalid_argument(
        "AutopilotOptions: backoff_base_s must be finite and > 0");
  if (backoff_window_s < 0.0 || !std::isfinite(backoff_window_s))
    throw std::invalid_argument(
        "AutopilotOptions: backoff_window_s must be finite and >= 0");
  if (watchdog_timeout_s < 0.0 || !std::isfinite(watchdog_timeout_s))
    throw std::invalid_argument(
        "AutopilotOptions: watchdog_timeout_s must be finite and >= 0 "
        "(0 = automatic)");
  if (!(nw_blame_threshold >= 0.0 && nw_blame_threshold <= 1.0))
    throw std::invalid_argument(
        "AutopilotOptions: nw_blame_threshold must be in [0, 1] (0 disables)");
  spot.validate();
  profile.validate();
  scripted_faults.validate();
  detector.validate();
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Unit-exponential revocation draws sampled per trial. Every Poisson
// revocation consumes one; an exhausted stream means no further market
// revocations, which (with the finite scripted events) bounds every trial.
constexpr int kDrawsPerTrial = 256;
// Backstop far above any plausible event count; tripping it means the
// engine stopped converging and aborting loudly beats hanging.
constexpr int kMaxEngineEvents = 200000;
constexpr int kMaxBackoffDoublings = 6;
constexpr double kEps = 1e-9;

// Everything the engine knows about one fleet shape, all measured through
// the profiler (and therefore deterministic and SimCache-shared).
struct ShapeStats {
  double samples_per_s = 0.0;  // warm-cache steady throughput
  double steady_epoch_s = 0.0;
  double cold_penalty_s = 0.0;  // first-epoch extra over steady (disk-cold)
  double iteration_s = 0.0;
  double restart_wait_s = 0.0;  // watchdog detection + reprovision, measured
  double shrink_wait_s = 0.0;   // detection only: survivors just continue
  double nw_blame_share = 0.0;  // causal N/W critical-path share, in [0, 1]
};

// Lazy per-shape measurement memo. Measurements are pure functions of the
// shape (seeded simulations), so concurrent duplicate computation is
// harmless — the memo only avoids repeat work, and no lock is held while
// simulating (which nests parallel_for on the caller-helps pool).
class Measurer {
 public:
  Measurer(const profiler::StashProfiler& prof, const AutopilotOptions& opt)
      : prof_(prof), opt_(opt) {}

  ShapeStats get(const profiler::ClusterSpec& spec) {
    const std::string key = spec.label();
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_.find(key);
      if (it != cache_.end()) return it->second;
    }
    ShapeStats s = measure(spec);
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.emplace(key, s).first->second;
  }

 private:
  ShapeStats measure(const profiler::ClusterSpec& spec) const {
    ShapeStats s;
    profiler::TrainingEstimate est = profiler::estimate_training(
        prof_, spec, opt_.per_gpu_batch, /*epochs=*/2);
    s.steady_epoch_s = std::max(est.steady_epoch_seconds, 1e-9);
    s.cold_penalty_s =
        std::max(0.0, est.first_epoch_seconds - est.steady_epoch_seconds);
    s.samples_per_s =
        static_cast<double>(prof_.dataset().num_samples) / s.steady_epoch_s;
    s.iteration_s = std::max(est.steady_iteration_seconds, 1e-9);

    // One revocation through the trainer's recovery machinery — the same
    // crash calibration the planner runs — gives the measured fixed cost of
    // losing a machine on this shape.
    profiler::FaultProfileOptions fopt;
    fopt.policy = ddl::RecoveryPolicy::kCheckpointRestart;
    fopt.barrier_timeout_s = opt_.watchdog_timeout_s > 0.0
                                 ? opt_.watchdog_timeout_s
                                 : std::max(2.0 * s.iteration_s, 1e-6);
    fopt.checkpoint_interval_s = opt_.spot.checkpoint_interval_s;
    fopt.checkpoint_write_s = opt_.spot.checkpoint_write_s;
    faults::FaultPlan crash_plan;
    faults::FaultEvent crash;
    crash.kind = faults::FaultKind::kCrash;
    crash.start_s = s.iteration_s * 2.5;
    crash.machine = 0;
    crash.reprovision_s = opt_.spot.restart_overhead_s;
    crash_plan.events.push_back(crash);
    ddl::TrainResult faulted =
        prof_.run_step(spec, profiler::Step::kRealWarm, opt_.per_gpu_batch,
                       &crash_plan, fopt);
    s.restart_wait_s =
        !faulted.recoveries.empty()
            ? faulted.recoveries.front().wait_seconds
            : fopt.barrier_timeout_s + opt_.spot.restart_overhead_s;
    // An elastic shrink skips the reprovision wait: survivors resume as
    // soon as the watchdog declares the dead worker.
    s.shrink_wait_s = std::min(s.restart_wait_s, fopt.barrier_timeout_s);

    obs::BlameReport blame = profiler::attribute_step(
        prof_, spec, profiler::Step::kRealWarm, opt_.per_gpu_batch);
    s.nw_blame_share = std::clamp(blame.nw_stall_pct / 100.0, 0.0, 1.0);
    return s;
  }

  const profiler::StashProfiler& prof_;
  const AutopilotOptions& opt_;
  std::mutex mu_;
  std::map<std::string, ShapeStats> cache_;
};

// Memoized plan::plan calls keyed by remaining-epoch count, shared by every
// trial's migrate decisions. Same lock discipline as Measurer.
class PlannerMemo {
 public:
  PlannerMemo(const dnn::Model& model, const dnn::Dataset& dataset,
              const AutopilotOptions& opt)
      : model_(model), dataset_(dataset), opt_(opt) {}

  std::shared_ptr<const plan::PlanReport> get(int epochs) {
    epochs = std::max(1, epochs);
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_.find(epochs);
      if (it != cache_.end()) return it->second;
    }
    plan::PlanOptions po;
    po.epochs = epochs;
    po.per_gpu_batch = opt_.per_gpu_batch;
    po.spot = opt_.spot;
    po.trials = opt_.plan_trials;
    po.seed = opt_.seed;
    // The autopilot measures recovery itself; re-calibrating inside every
    // re-plan would only repeat cache-bypassing fault runs.
    po.calibrate_recovery = false;
    po.watchdog_timeout_s = opt_.watchdog_timeout_s;
    po.candidates = opt_.candidates;
    po.profile = opt_.profile;
    po.profile.trace = nullptr;
    po.profile.metrics = nullptr;
    po.profile.causal = nullptr;
    po.profile.progress = nullptr;
    auto rep =
        std::make_shared<const plan::PlanReport>(plan::plan(model_, dataset_, po));
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.emplace(epochs, rep).first->second;
  }

 private:
  const dnn::Model& model_;
  const dnn::Dataset& dataset_;
  const AutopilotOptions& opt_;
  std::mutex mu_;
  std::map<int, std::shared_ptr<const plan::PlanReport>> cache_;
};

struct StragglerWindow {
  double start_s = 0.0;
  double end_s = 0.0;
  double factor = 1.0;  // job-wide compute slowdown while active
  // When the engine learns the window opened: start_s in threshold mode,
  // start_s + the monitor CUSUM's detection latency in detector mode. A
  // window that closes before announce_s is never announced — a blip the
  // monitor would have missed.
  double announce_s = 0.0;
  int detect_latency_iters = 0;
};

// Detection latency, in iterations, of the streaming monitor's CUSUM on a
// synthesized stream: baseline_iters samples at the steady iteration time,
// then shifted samples at `factor` times that. The CUSUM standardizes by the
// frozen baseline, so the iteration time cancels and this is a pure
// function of (factor, detector config) — no randomness, no clocks.
int cusum_detect_latency_iters(double factor,
                               const monitor::DetectorConfig& cfg) {
  if (factor <= 1.0) return 0;  // not a slowdown: nothing to detect
  monitor::CusumDetector det(cfg);
  for (std::size_t i = 0; i < cfg.baseline_iters; ++i) det.push(1.0);
  constexpr int kCap = 4096;
  for (int i = 1; i <= kCap; ++i)
    if (det.push(factor).fired) return i;
  return kCap;  // shift below the detector's resolution
}

// Shared, read-only context for one autopilot run; `draws` is per trial.
struct EngineEnv {
  const AutopilotOptions* opt = nullptr;
  Measurer* measurer = nullptr;
  PlannerMemo* planner = nullptr;
  const std::vector<double>* draws = nullptr;  // unit exponentials
  const std::vector<StragglerWindow>* windows = nullptr;
  const std::vector<double>* crashes = nullptr;  // scripted revocation times
  double total_samples = 0.0;
  double samples_per_epoch = 0.0;
  FleetShape initial{};
  double deadline_s = 0.0;            // 0 = none
  double lateness_penalty_per_s = 0.0;
};

struct SimState {
  FleetShape fleet{};
  double now = 0.0;
  double cost = 0.0;
  double samples = 0.0;
  double durable = 0.0;  // progress captured by the last checkpoint
  double last_ckpt_now = 0.0;
  double remaining_unit = kInf;  // unit-exponential residual to next revocation
  std::size_t draw_idx = 0;
  std::size_t crash_idx = 0;
  std::vector<char> window_cleared;    // migrated/floored away
  std::vector<char> window_announced;  // straggler decision already fired
  int consecutive = 0;
  double last_rev_t = -kInf;
  bool on_floor = false;
  bool degraded = false;
  int revocations = 0;
  int scheduled_applied = 0;
  double prev_nw_share = 0.0;
};

class Engine {
 public:
  struct RunResult {
    double wall_s = 0.0;
    double cost_usd = 0.0;
    bool degraded = false;
    int revocations = 0;
    int scheduled = 0;
    std::string final_fleet;
    std::vector<Decision> decisions;
  };

  explicit Engine(const EngineEnv& env) : env_(env) {}

  SimState init_state() const {
    SimState st;
    st.fleet = env_.initial;
    ShapeStats is = stats(st.fleet);
    // The cold first epoch's extra stall is paid up front, before the fleet
    // is exposed to the revocation process (it is disk-bound ramp-up, not
    // steady progress the market can steal twice).
    st.now = is.cold_penalty_s;
    st.cost = rate(st.fleet) * is.cold_penalty_s;
    st.prev_nw_share = is.nw_blame_share;
    st.window_cleared.assign(env_.windows->size(), 0);
    st.window_announced.assign(env_.windows->size(), 0);
    if (!env_.draws->empty()) {
      st.remaining_unit = (*env_.draws)[0];
      st.draw_idx = 1;
    }
    return st;
  }

  // Closed-form expected completion from `st` onward: throughput derated by
  // the checkpoint duty cycle and the expected revocation overhead
  // (restart wait plus half a checkpoint interval of rework per event).
  // The currently active straggler window (if any) is modeled until its
  // end; future windows are ignored — this is the adaptive policy's
  // decision model, not the ground truth the engine simulates.
  double expected_completion(const SimState& st, double* cost_out) const {
    ShapeStats ns = stats(st.fleet);
    const double remaining = std::max(0.0, env_.total_samples - st.samples);
    const double rr = rev_rate(st.fleet);
    double eff = ns.samples_per_s;
    if (st.fleet.spot_machines > 0) {
      const auto& sc = opt().spot;
      eff *= sc.checkpoint_interval_s /
             (sc.checkpoint_interval_s + sc.checkpoint_write_s);
      eff *= std::clamp(
          1.0 - rr * (ns.restart_wait_s + 0.5 * sc.checkpoint_interval_s),
          0.05, 1.0);
    }
    double run_s;
    const double f = straggler_factor(st);
    if (f > 1.0) {
      const double head = std::max(0.0, nearest_active_end(st) - st.now);
      const double head_work = head * eff / f;
      run_s = head_work >= remaining ? remaining * f / eff
                                     : head + (remaining - head_work) / eff;
    } else {
      run_s = remaining / eff;
    }
    if (cost_out != nullptr) *cost_out = st.cost + rate(st.fleet) * run_s;
    return st.now + run_s;
  }

  // depth 0 = a top-level run (may roll out candidates); depth 1 = a
  // counterfactual rollout, which decides by the closed-form expectation
  // only and therefore never recurses.
  RunResult run(SimState st, PolicyKind policy, bool oracle, bool record,
                int depth) const {
    RunResult out;
    int events = 0;
    while (st.samples < env_.total_samples - kEps) {
      if (++events > kMaxEngineEvents)
        throw std::logic_error(
            "autopilot engine: event cap exceeded (non-terminating scenario)");
      ShapeStats ns = stats(st.fleet);
      const double tput = ns.samples_per_s / straggler_factor(st);
      const double rr = rev_rate(st.fleet);
      const double t_finish = (env_.total_samples - st.samples) / tput;
      const double t_ckpt =
          st.fleet.spot_machines > 0
              ? std::max(0.0, st.last_ckpt_now +
                                  opt().spot.checkpoint_interval_s - st.now)
              : kInf;
      const double t_rev = rr > 0.0 && std::isfinite(st.remaining_unit)
                               ? st.remaining_unit / rr
                               : kInf;
      const double t_crash =
          st.crash_idx < env_.crashes->size()
              ? std::max(0.0, (*env_.crashes)[st.crash_idx] - st.now)
              : kInf;
      const double t_edge = next_window_edge(st) - st.now;
      const double dt = std::min({t_finish, t_ckpt, t_rev, t_crash, t_edge});

      st.now += dt;
      st.cost += rate(st.fleet) * dt;
      st.samples += tput * dt;
      if (rr > 0.0 && std::isfinite(st.remaining_unit))
        st.remaining_unit = std::max(0.0, st.remaining_unit - rr * dt);

      if (dt == t_finish) break;
      if (dt == t_edge) {
        announce_windows(st, policy, oracle, record, depth, out);
      } else if (dt == t_crash) {
        ++st.crash_idx;
        // Scripted crashes model spot reclamations; an all-on-demand fleet
        // has nothing for the market to take back.
        if (st.fleet.spot_machines > 0) {
          ++st.scheduled_applied;
          on_revocation(st, policy, oracle, record, depth, out);
        }
      } else if (dt == t_rev) {
        st.remaining_unit = st.draw_idx < env_.draws->size()
                                ? (*env_.draws)[st.draw_idx++]
                                : kInf;
        on_revocation(st, policy, oracle, record, depth, out);
      } else {
        // Checkpoint: the write stalls training and is billed.
        const double wr = opt().spot.checkpoint_write_s;
        st.now += wr;
        st.cost += rate(st.fleet) * wr;
        st.durable = st.samples;
        st.last_ckpt_now = st.now;
      }
    }
    out.wall_s = st.now;
    out.cost_usd = st.cost;
    out.degraded = st.degraded;
    out.revocations = st.revocations;
    out.scheduled = st.scheduled_applied;
    out.final_fleet = st.fleet.label();
    return out;
  }

  double objective(double wall_s, double cost_usd) const {
    double obj = cost_usd;
    if (env_.deadline_s > 0.0)
      obj += env_.lateness_penalty_per_s * std::max(0.0, wall_s - env_.deadline_s);
    if (opt().budget_usd > 0.0)
      obj += 2.0 * std::max(0.0, cost_usd - opt().budget_usd);
    return obj;
  }

 private:
  struct Applied {
    double wait_s = 0.0;
    double backoff_s = 0.0;
    double lost_work_s = 0.0;
  };

  const AutopilotOptions& opt() const { return *env_.opt; }
  ShapeStats stats(const FleetShape& f) const { return env_.measurer->get(f.spec); }

  double rate(const FleetShape& f) const {
    return cloud::instance(f.spec.instance).price_per_hour *
           (f.spot_machines * opt().spot.price_factor + f.ondemand_machines()) /
           3600.0;
  }

  double rev_rate(const FleetShape& f) const {
    return f.spot_machines > 0
               ? opt().spot.interruptions_per_hour * f.spot_machines / 3600.0
               : 0.0;
  }

  double straggler_factor(const SimState& st) const {
    double f = 1.0;
    for (std::size_t i = 0; i < env_.windows->size(); ++i) {
      const StragglerWindow& w = (*env_.windows)[i];
      if (!st.window_cleared[i] && w.start_s <= st.now + kEps &&
          st.now < w.end_s - kEps)
        f = std::max(f, w.factor);
    }
    return f;
  }

  double nearest_active_end(const SimState& st) const {
    double e = kInf;
    for (std::size_t i = 0; i < env_.windows->size(); ++i) {
      const StragglerWindow& w = (*env_.windows)[i];
      if (!st.window_cleared[i] && w.start_s <= st.now + kEps &&
          st.now < w.end_s - kEps)
        e = std::min(e, w.end_s);
    }
    return e;
  }

  // Next throughput-changing window boundary — or pending detector
  // announcement — strictly after now.
  double next_window_edge(const SimState& st) const {
    double e = kInf;
    for (std::size_t i = 0; i < env_.windows->size(); ++i) {
      const StragglerWindow& w = (*env_.windows)[i];
      if (st.window_cleared[i]) continue;
      if (w.start_s > st.now + kEps) {
        e = std::min(e, w.start_s);
        continue;
      }
      if (!st.window_announced[i] && w.announce_s > st.now + kEps &&
          w.announce_s < w.end_s - kEps)
        e = std::min(e, w.announce_s);
      if (w.end_s > st.now + kEps) e = std::min(e, w.end_s);
    }
    return e;
  }

  void clear_active_windows(SimState& st) const {
    for (std::size_t i = 0; i < env_.windows->size(); ++i) {
      const StragglerWindow& w = (*env_.windows)[i];
      if (w.start_s <= st.now + kEps && st.now < w.end_s - kEps)
        st.window_cleared[i] = 1;
    }
  }

  FleetShape migrate_target(const SimState& st) const {
    const double rem = std::max(0.0, env_.total_samples - st.samples);
    const int rem_epochs = std::clamp(
        static_cast<int>(std::ceil(rem / env_.samples_per_epoch)), 1,
        opt().epochs);
    auto rep = env_.planner->get(rem_epochs);
    const plan::CandidatePlan* best = nullptr;
    double best_obj = kInf;
    for (int idx : rep->frontier) {
      const plan::CandidatePlan& p = rep->plans[static_cast<std::size_t>(idx)];
      const double obj =
          objective(st.now + p.expected_wall_s, st.cost + p.expected_cost_usd);
      if (obj < best_obj) {
        best_obj = obj;
        best = &p;
      }
    }
    if (best == nullptr) return st.fleet;  // empty frontier: stay put
    FleetShape f;
    f.spec = best->spec;
    f.spot_machines = best->spot_machines;
    return f;
  }

  // Mutates `st` to reflect taking `a`. Revocation-trigger actions replace
  // (or absorb) a machine the market just took; planned triggers (straggler
  // / blame shift) checkpoint first and lose nothing.
  Applied apply_action(SimState& st, Action a, Trigger trig,
                       double backoff) const {
    Applied ap;
    ap.backoff_s = backoff;
    const ShapeStats cur = stats(st.fleet);
    const FleetShape before = st.fleet;
    const bool planned = trig != Trigger::kRevocation;
    double wait = 0.0;
    auto rollback = [&] {
      ap.lost_work_s = (st.samples - st.durable) / cur.samples_per_s;
      st.samples = st.durable;
    };
    switch (a) {
      case Action::kHold:
        if (planned) return ap;  // observe only, no cost
        wait = cur.restart_wait_s;
        rollback();
        break;
      case Action::kShrink:  // revocation only: drop the revoked machine
        st.fleet.spec.count -= 1;
        st.fleet.spot_machines = std::max(0, st.fleet.spot_machines - 1);
        wait = cur.shrink_wait_s;  // elastic: survivors keep their progress
        break;
      case Action::kFallback:  // replace the revoked spot machine with od
        st.fleet.spot_machines = std::max(0, st.fleet.spot_machines - 1);
        wait = cur.restart_wait_s;
        rollback();
        break;
      case Action::kMigrate: {
        const FleetShape target = migrate_target(st);
        if (planned) {
          const double wr = opt().spot.checkpoint_write_s;
          st.now += wr;
          st.cost += rate(before) * wr;
          st.durable = st.samples;
        } else {
          rollback();
        }
        wait = cur.restart_wait_s;
        if (!target.same_shape(before))
          wait += stats(target).cold_penalty_s;
        st.fleet = target;
        clear_active_windows(st);
        break;
      }
      case Action::kFloor: {
        FleetShape floor;
        floor.spec = env_.initial.spec;
        floor.spec.count = opt().floor_machines;
        floor.spot_machines = 0;
        wait = cur.restart_wait_s;
        rollback();
        if (!floor.same_shape(before)) wait += stats(floor).cold_penalty_s;
        st.fleet = floor;
        st.on_floor = true;
        st.degraded = true;
        clear_active_windows(st);
        break;
      }
    }
    wait += backoff;
    st.cost += rate(st.fleet) * wait;  // idle capacity is still billed
    st.now += wait;
    st.last_ckpt_now = st.now;
    ap.wait_s = wait;
    return ap;
  }

  CandidateEval expected_eval(const SimState& st0, Action a, Trigger trig,
                              double backoff) const {
    SimState st = st0;
    apply_action(st, a, trig, backoff);
    CandidateEval e;
    e.action = a;
    e.predicted_wall_s = expected_completion(st, &e.predicted_cost_usd);
    e.objective = objective(e.predicted_wall_s, e.predicted_cost_usd);
    return e;
  }

  // True-trace counterfactual: take `a`, then continue to completion under
  // the expected-value adaptive policy on the same residual draw stream.
  CandidateEval rollout_eval(const SimState& st0, Action a, Trigger trig,
                             double backoff) const {
    SimState st = st0;
    const FleetShape before = st.fleet;
    apply_action(st, a, trig, backoff);
    RunResult scratch;
    maybe_blame_shift(st, !st.fleet.same_shape(before), PolicyKind::kAdaptive,
                      false, false, 1, scratch);
    RunResult rr = run(std::move(st), PolicyKind::kAdaptive, false, false, 1);
    CandidateEval e;
    e.action = a;
    e.predicted_wall_s = rr.wall_s;
    e.predicted_cost_usd = rr.cost_usd;
    e.objective = objective(rr.wall_s, rr.cost_usd);
    return e;
  }

  static std::size_t argmin(const std::vector<CandidateEval>& evals) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < evals.size(); ++i)
      if (evals[i].objective < evals[best].objective) best = i;
    return best;
  }

  // Shared decision core: pick among `cands` per the run's mode, roll out
  // every candidate when this run records regret (or is the oracle), apply,
  // and record. Returns whether the fleet shape changed.
  bool decide_and_apply(SimState& st, Trigger trig, double backoff,
                        const std::vector<Action>& cands, Action fixed_choice,
                        bool forced, PolicyKind policy, bool oracle,
                        bool record, int depth, RunResult& out) const {
    const bool want_rollouts = oracle || (record && depth == 0);
    std::vector<CandidateEval> rolls;
    if (want_rollouts) {
      rolls.reserve(cands.size());
      for (Action a : cands) rolls.push_back(rollout_eval(st, a, trig, backoff));
    }
    Action chosen;
    if (forced) {
      chosen = Action::kFloor;
    } else if (oracle) {
      chosen = rolls[argmin(rolls)].action;
    } else if (policy == PolicyKind::kAdaptive) {
      std::vector<CandidateEval> evals;
      evals.reserve(cands.size());
      for (Action a : cands) evals.push_back(expected_eval(st, a, trig, backoff));
      chosen = evals[argmin(evals)].action;
    } else {
      chosen = fixed_choice;
    }

    Decision d;
    d.time_s = st.now;
    d.trigger = trig;
    d.fleet_before = st.fleet.label();
    d.consecutive_revocations = trig == Trigger::kRevocation ? st.consecutive : 0;
    d.forced_floor = forced;

    const FleetShape before = st.fleet;
    const Applied ap = apply_action(st, chosen, trig, backoff);
    const bool changed = !st.fleet.same_shape(before);

    if (record && depth == 0) {
      d.action = chosen;
      d.fleet_after = st.fleet.label();
      d.wait_s = ap.wait_s;
      d.backoff_s = ap.backoff_s;
      d.lost_work_s = ap.lost_work_s;
      d.nw_blame_share = stats(st.fleet).nw_blame_share;
      if (!rolls.empty()) {
        double best = kInf, chosen_obj = kInf;
        for (const CandidateEval& e : rolls) {
          best = std::min(best, e.objective);
          if (e.action == chosen) chosen_obj = e.objective;
        }
        if (std::isfinite(chosen_obj))
          d.regret = std::max(0.0, chosen_obj - best);
        d.candidates = std::move(rolls);
      }
      out.decisions.push_back(std::move(d));
    }
    return changed;
  }

  void on_revocation(SimState& st, PolicyKind policy, bool oracle, bool record,
                     int depth, RunResult& out) const {
    ++st.revocations;
    st.consecutive = st.now - st.last_rev_t <= opt().backoff_window_s
                         ? st.consecutive + 1
                         : 1;
    st.last_rev_t = st.now;
    const double backoff =
        st.consecutive > 1
            ? opt().backoff_base_s *
                  static_cast<double>(
                      1ULL << std::min(st.consecutive - 2, kMaxBackoffDoublings))
            : 0.0;
    bool forced = st.consecutive > opt().max_retries;

    std::vector<Action> cands;
    Action fixed_choice = Action::kHold;
    if (forced) {
      if (record && depth == 0)
        util::log_warn("autopilot: ", st.consecutive,
                       " consecutive revocations exceed max_retries=",
                       opt().max_retries,
                       "; degrading to the on-demand floor");
      cands = {Action::kFloor};
    } else {
      const bool can_shrink = st.fleet.spec.count - 1 >= opt().min_machines;
      cands.push_back(Action::kHold);
      if (can_shrink) cands.push_back(Action::kShrink);
      cands.push_back(Action::kFallback);
      cands.push_back(Action::kMigrate);
      switch (policy) {
        case PolicyKind::kHold:
          fixed_choice = Action::kHold;
          break;
        case PolicyKind::kShrink:
          if (can_shrink) {
            fixed_choice = Action::kShrink;
          } else {
            // The fleet-below-k edge: shrinking under the floor would stop
            // progress, so the policy degrades gracefully instead.
            if (record && depth == 0)
              util::log_warn(
                  "autopilot: shrink would leave ", st.fleet.spec.count - 1,
                  " machine(s), below min_machines=", opt().min_machines,
                  "; degrading to the on-demand floor");
            forced = true;
            cands = {Action::kFloor};
          }
          break;
        case PolicyKind::kFallback:
          fixed_choice = Action::kFallback;
          break;
        case PolicyKind::kMigrate:
          fixed_choice = Action::kMigrate;
          break;
        case PolicyKind::kAdaptive:
          break;  // decided from the candidate evals
      }
    }
    const bool changed = decide_and_apply(st, Trigger::kRevocation, backoff,
                                          cands, fixed_choice, forced, policy,
                                          oracle, record, depth, out);
    maybe_blame_shift(st, changed, policy, oracle, record, depth, out);
  }

  void announce_windows(SimState& st, PolicyKind policy, bool oracle,
                        bool record, int depth, RunResult& out) const {
    for (std::size_t i = 0; i < env_.windows->size(); ++i) {
      const StragglerWindow& w = (*env_.windows)[i];
      if (st.window_cleared[i] || st.window_announced[i]) continue;
      if (w.announce_s > st.now + kEps || st.now >= w.end_s - kEps) continue;
      st.window_announced[i] = 1;
      const std::vector<Action> cands = {Action::kHold, Action::kMigrate};
      const Action fixed_choice =
          policy == PolicyKind::kMigrate ? Action::kMigrate : Action::kHold;
      const bool changed =
          decide_and_apply(st, Trigger::kStraggler, 0.0, cands, fixed_choice,
                           false, policy, oracle, record, depth, out);
      if (record && depth == 0 && !out.decisions.empty() &&
          w.detect_latency_iters > 0) {
        out.decisions.back().detect_latency_iters = w.detect_latency_iters;
        out.decisions.back().detect_delay_s = w.announce_s - w.start_s;
      }
      maybe_blame_shift(st, changed, policy, oracle, record, depth, out);
    }
  }

  // After a fleet change, fire one extra decision if the causal N/W stall
  // share of the new shape crossed the threshold from below — the "we
  // replanned onto a network-bound fleet" signal.
  void maybe_blame_shift(SimState& st, bool shape_changed, PolicyKind policy,
                         bool oracle, bool record, int depth,
                         RunResult& out) const {
    if (!shape_changed) return;
    const double share = stats(st.fleet).nw_blame_share;
    const double prev = st.prev_nw_share;
    st.prev_nw_share = share;
    if (opt().nw_blame_threshold <= 0.0 || st.on_floor) return;
    bool fire;
    if (opt().trigger_mode == TriggerMode::kDetector) {
      // Single-sample CUSUM exceedance on the share sequence: the previous
      // shape's share is the frozen baseline, min_sigma_frac scales it —
      // a relative-shift detector instead of an absolute level.
      const auto& dc = opt().detector;
      const double sigma =
          std::max(dc.min_sigma, dc.min_sigma_frac * std::abs(prev));
      fire = (share - prev) / sigma - dc.cusum_k > dc.cusum_h;
    } else {
      fire = share >= opt().nw_blame_threshold &&
             prev < opt().nw_blame_threshold;
    }
    if (!fire) return;
    const std::vector<Action> cands = {Action::kHold, Action::kMigrate};
    const Action fixed_choice =
        policy == PolicyKind::kMigrate ? Action::kMigrate : Action::kHold;
    const bool changed =
        decide_and_apply(st, Trigger::kBlameShift, 0.0, cands, fixed_choice,
                         false, policy, oracle, record, depth, out);
    // A follow-up migration updates prev_nw_share; crossing logic prevents
    // a re-fire loop.
    maybe_blame_shift(st, changed, policy, oracle, record, depth, out);
  }

  const EngineEnv& env_;
};

}  // namespace

AutopilotReport run_autopilot(const dnn::Model& model,
                              const dnn::Dataset& dataset,
                              const AutopilotOptions& options) {
  options.validate();

  AutopilotReport report;
  report.model_name = model.name();
  report.options = options;

  // Telemetry sinks are stripped for the internal sweeps (the trial fan-out
  // would race them); record_telemetry derives everything from the report.
  profiler::ProfileOptions popt = options.profile;
  popt.trace = nullptr;
  popt.metrics = nullptr;
  popt.causal = nullptr;
  profiler::StashProfiler prof(model, dataset, popt);

  Measurer measurer(prof, options);
  PlannerMemo planner(model, dataset, options);

  FleetShape initial;
  if (options.initial_spec.instance.empty()) {
    auto rep = planner.get(options.epochs);
    const plan::CandidatePlan* best = nullptr;
    double best_obj = kInf;
    for (int idx : rep->frontier) {
      const plan::CandidatePlan& p = rep->plans[static_cast<std::size_t>(idx)];
      double obj = p.expected_cost_usd;
      if (options.deadline_hours > 0.0)
        obj += 2.0 * p.spec.hourly_price() / 3600.0 *
               std::max(0.0, p.expected_wall_s -
                                 options.deadline_hours * 3600.0);
      if (options.budget_usd > 0.0)
        obj += 2.0 * std::max(0.0, p.expected_cost_usd - options.budget_usd);
      if (obj < best_obj) {
        best_obj = obj;
        best = &p;
      }
    }
    if (best == nullptr)
      throw std::runtime_error(
          "autopilot: the planner returned an empty frontier (no candidate "
          "fits this model/batch)");
    initial.spec = best->spec;
    initial.spot_machines = best->spot_machines;
  } else {
    initial.spec = options.initial_spec;
    initial.spot_machines =
        options.initial_spot_machines < 0
            ? initial.spec.count
            : std::min(options.initial_spot_machines, initial.spec.count);
  }
  report.initial_fleet = initial;

  std::vector<StragglerWindow> windows;
  std::vector<double> crashes;
  for (const faults::FaultEvent& ev : options.scripted_faults.events) {
    if (ev.kind == faults::FaultKind::kCrash)
      crashes.push_back(ev.start_s);
    else if (ev.kind == faults::FaultKind::kGpuStraggler)
      windows.push_back({ev.start_s, ev.end_s(), ev.factor});
  }
  std::sort(crashes.begin(), crashes.end());
  std::sort(windows.begin(), windows.end(),
            [](const StragglerWindow& a, const StragglerWindow& b) {
              return a.start_s != b.start_s ? a.start_s < b.start_s
                                            : a.end_s < b.end_s;
            });
  for (StragglerWindow& w : windows) {
    w.announce_s = w.start_s;
    if (options.trigger_mode == TriggerMode::kDetector) {
      w.detect_latency_iters =
          cusum_detect_latency_iters(w.factor, options.detector);
      // Latency in wall seconds: the shifted iterations the monitor needed
      // run `factor` times slower than the initial fleet's steady pace.
      w.announce_s = w.start_s + w.detect_latency_iters *
                                     measurer.get(initial.spec).iteration_s *
                                     w.factor;
    }
  }

  EngineEnv base;
  base.opt = &options;
  base.measurer = &measurer;
  base.planner = &planner;
  base.windows = &windows;
  base.crashes = &crashes;
  base.samples_per_epoch = static_cast<double>(dataset.num_samples);
  base.total_samples = base.samples_per_epoch * options.epochs;
  base.initial = initial;
  base.deadline_s = options.deadline_hours * 3600.0;
  base.lateness_penalty_per_s =
      2.0 * initial.spec.hourly_price() / 3600.0;

  {
    const std::vector<double> no_draws;
    EngineEnv env = base;
    env.draws = &no_draws;
    Engine eng(env);
    SimState st = eng.init_state();
    report.planned_wall_s = eng.expected_completion(st, &report.planned_cost_usd);
  }

  report.trials.resize(static_cast<std::size_t>(options.trials));
  util::Rng root(options.seed);
  exec::ThreadPool* pool =
      options.profile.exec != nullptr ? options.profile.exec->pool() : nullptr;
  exec::parallel_for(pool, report.trials.size(), [&](std::size_t t) {
    util::Rng rng = root.child(static_cast<std::uint64_t>(t));
    std::vector<double> draws(kDrawsPerTrial);
    for (double& d : draws) d = rng.exponential(1.0);

    EngineEnv env = base;
    env.draws = &draws;
    Engine eng(env);

    TrialResult tr;
    tr.seed = util::splitmix64(options.seed) ^
              util::splitmix64(static_cast<std::uint64_t>(t));

    Engine::RunResult achieved =
        eng.run(eng.init_state(), options.policy, false, true, 0);
    Engine::RunResult baseline =
        eng.run(eng.init_state(), PolicyKind::kHold, false, false, 0);
    Engine::RunResult oracle =
        eng.run(eng.init_state(), options.policy, true, false, 0);

    tr.revocations = achieved.revocations;
    tr.scheduled_crashes = achieved.scheduled;
    tr.achieved_wall_s = achieved.wall_s;
    tr.achieved_cost_usd = achieved.cost_usd;
    tr.baseline_wall_s = baseline.wall_s;
    tr.baseline_cost_usd = baseline.cost_usd;
    tr.oracle_wall_s = oracle.wall_s;
    tr.oracle_cost_usd = oracle.cost_usd;
    tr.degraded_to_floor = achieved.degraded;
    tr.final_fleet = achieved.final_fleet;
    tr.decisions = std::move(achieved.decisions);
    for (const Decision& d : tr.decisions) tr.total_regret += d.regret;
    tr.met_budget = options.budget_usd <= 0.0 ||
                    tr.achieved_cost_usd <= options.budget_usd + 1e-9;
    tr.met_deadline =
        options.deadline_hours <= 0.0 ||
        tr.achieved_wall_s <= options.deadline_hours * 3600.0 + 1e-9;
    report.trials[t] = std::move(tr);
  });

  const double n = static_cast<double>(report.trials.size());
  for (const TrialResult& tr : report.trials) {
    report.mean_achieved_wall_s += tr.achieved_wall_s / n;
    report.mean_achieved_cost_usd += tr.achieved_cost_usd / n;
    report.mean_baseline_wall_s += tr.baseline_wall_s / n;
    report.mean_baseline_cost_usd += tr.baseline_cost_usd / n;
    report.mean_oracle_wall_s += tr.oracle_wall_s / n;
    report.mean_oracle_cost_usd += tr.oracle_cost_usd / n;
    report.mean_regret += tr.total_regret / n;
    if (tr.achieved_wall_s < tr.baseline_wall_s - 1e-9)
      ++report.trials_beating_baseline_wall;
    if (tr.achieved_cost_usd < tr.baseline_cost_usd - 1e-9)
      ++report.trials_beating_baseline_cost;
    if (tr.degraded_to_floor) ++report.trials_degraded_to_floor;
  }
  return report;
}

void record_telemetry(const AutopilotReport& r,
                      telemetry::MetricsRegistry* metrics,
                      util::TraceRecorder* trace) {
  if (metrics != nullptr) {
    auto& m = *metrics;
    m.counter("autopilot/trials").add(static_cast<double>(r.trials.size()));
    for (const TrialResult& tr : r.trials) {
      m.counter("autopilot/revocations").add(tr.revocations);
      m.counter("autopilot/decisions")
          .add(static_cast<double>(tr.decisions.size()));
      if (tr.degraded_to_floor) m.counter("autopilot/floor_degradations").increment();
      for (const Decision& d : tr.decisions) {
        m.counter(std::string("autopilot/actions/") + to_string(d.action))
            .increment();
        m.counter(std::string("autopilot/triggers/") + to_string(d.trigger))
            .increment();
        if (d.forced_floor) m.counter("autopilot/forced_floor").increment();
        if (d.backoff_s > 0.0) m.counter("autopilot/backoffs").increment();
        m.histogram("autopilot/decision_wait_s").observe(d.wait_s);
        m.histogram("autopilot/decision_regret").observe(d.regret);
      }
    }
    m.gauge("autopilot/mean_achieved_wall_s").set(r.mean_achieved_wall_s);
    m.gauge("autopilot/mean_achieved_cost_usd").set(r.mean_achieved_cost_usd);
    m.gauge("autopilot/mean_baseline_wall_s").set(r.mean_baseline_wall_s);
    m.gauge("autopilot/mean_baseline_cost_usd").set(r.mean_baseline_cost_usd);
    m.gauge("autopilot/mean_oracle_wall_s").set(r.mean_oracle_wall_s);
    m.gauge("autopilot/mean_oracle_cost_usd").set(r.mean_oracle_cost_usd);
    m.gauge("autopilot/mean_regret").set(r.mean_regret);
  }
  if (trace != nullptr && !r.trials.empty()) {
    constexpr int kPid = 9000;  // clear of the per-machine tracks
    trace->name_process(kPid, "autopilot");
    trace->name_track(kPid, 0, "decisions (trial 0)");
    for (const Decision& d : r.trials.front().decisions) {
      trace->add_instant(std::string("trigger:") + to_string(d.trigger),
                         "autopilot", d.time_s, kPid, 0);
      trace->add_span(std::string(to_string(d.action)) + " " + d.fleet_before +
                          " -> " + d.fleet_after,
                      "autopilot", d.time_s, d.wait_s, kPid, 0);
    }
  }
}

std::string to_json(const AutopilotReport& r,
                    const std::vector<std::pair<std::string, std::string>>&
                        extra_config,
                    const telemetry::MetricsRegistry* metrics) {
  util::JsonWriter w;
  w.begin_object();
  w.key("schema").value("stash.autopilot/1");
  w.key("tool").value("stash");
  w.key("command").value("autopilot");
  w.key("config").begin_object();
  w.key("model").value(r.model_name);
  w.key("policy").value(to_string(r.options.policy));
  w.key("epochs").value(r.options.epochs);
  w.key("per_gpu_batch").value(r.options.per_gpu_batch);
  w.key("budget_usd").value(r.options.budget_usd);
  w.key("deadline_hours").value(r.options.deadline_hours);
  w.key("spot_price_factor").value(r.options.spot.price_factor);
  w.key("spot_interruptions_per_hour")
      .value(r.options.spot.interruptions_per_hour);
  w.key("spot_restart_overhead_s").value(r.options.spot.restart_overhead_s);
  w.key("checkpoint_interval_s").value(r.options.spot.checkpoint_interval_s);
  w.key("checkpoint_write_s").value(r.options.spot.checkpoint_write_s);
  w.key("trials").value(r.options.trials);
  w.key("plan_trials").value(r.options.plan_trials);
  w.key("seed").value(static_cast<unsigned long long>(r.options.seed));
  w.key("floor_machines").value(r.options.floor_machines);
  w.key("min_machines").value(r.options.min_machines);
  w.key("max_retries").value(r.options.max_retries);
  w.key("backoff_base_s").value(r.options.backoff_base_s);
  w.key("backoff_window_s").value(r.options.backoff_window_s);
  w.key("watchdog_timeout_s").value(r.options.watchdog_timeout_s);
  w.key("nw_blame_threshold").value(r.options.nw_blame_threshold);
  w.key("trigger_mode").value(to_string(r.options.trigger_mode));
  w.key("scripted_faults").value(r.options.scripted_faults.to_spec());
  for (const auto& [k, v] : extra_config) w.key(k).value(v);
  w.end_object();

  w.key("initial_fleet").begin_object();
  w.key("label").value(r.initial_fleet.label());
  w.key("instance").value(r.initial_fleet.spec.instance);
  w.key("count").value(r.initial_fleet.spec.count);
  w.key("spot_machines").value(r.initial_fleet.spot_machines);
  w.key("ondemand_machines").value(r.initial_fleet.ondemand_machines());
  w.end_object();

  w.key("planned").begin_object();
  w.key("wall_s").value(r.planned_wall_s);
  w.key("cost_usd").value(r.planned_cost_usd);
  w.end_object();

  w.key("trials").begin_array();
  for (const TrialResult& tr : r.trials) {
    w.begin_object();
    w.key("seed").value(static_cast<unsigned long long>(tr.seed));
    w.key("revocations").value(tr.revocations);
    w.key("scheduled_crashes").value(tr.scheduled_crashes);
    w.key("achieved_wall_s").value(tr.achieved_wall_s);
    w.key("achieved_cost_usd").value(tr.achieved_cost_usd);
    w.key("baseline_wall_s").value(tr.baseline_wall_s);
    w.key("baseline_cost_usd").value(tr.baseline_cost_usd);
    w.key("oracle_wall_s").value(tr.oracle_wall_s);
    w.key("oracle_cost_usd").value(tr.oracle_cost_usd);
    w.key("total_regret").value(tr.total_regret);
    w.key("degraded_to_floor").value(tr.degraded_to_floor);
    w.key("met_budget").value(tr.met_budget);
    w.key("met_deadline").value(tr.met_deadline);
    w.key("final_fleet").value(tr.final_fleet);
    w.key("decisions").begin_array();
    for (const Decision& d : tr.decisions) {
      w.begin_object();
      w.key("time_s").value(d.time_s);
      w.key("trigger").value(to_string(d.trigger));
      w.key("action").value(to_string(d.action));
      w.key("fleet_before").value(d.fleet_before);
      w.key("fleet_after").value(d.fleet_after);
      w.key("wait_s").value(d.wait_s);
      w.key("backoff_s").value(d.backoff_s);
      w.key("consecutive_revocations").value(d.consecutive_revocations);
      w.key("lost_work_s").value(d.lost_work_s);
      w.key("nw_blame_share").value(d.nw_blame_share);
      w.key("detect_latency_iters").value(d.detect_latency_iters);
      w.key("detect_delay_s").value(d.detect_delay_s);
      w.key("forced_floor").value(d.forced_floor);
      w.key("regret").value(d.regret);
      w.key("candidates").begin_array();
      for (const CandidateEval& c : d.candidates) {
        w.begin_object();
        w.key("action").value(to_string(c.action));
        w.key("predicted_wall_s").value(c.predicted_wall_s);
        w.key("predicted_cost_usd").value(c.predicted_cost_usd);
        w.key("objective").value(c.objective);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("summary").begin_object();
  w.key("mean_achieved_wall_s").value(r.mean_achieved_wall_s);
  w.key("mean_achieved_cost_usd").value(r.mean_achieved_cost_usd);
  w.key("mean_baseline_wall_s").value(r.mean_baseline_wall_s);
  w.key("mean_baseline_cost_usd").value(r.mean_baseline_cost_usd);
  w.key("mean_oracle_wall_s").value(r.mean_oracle_wall_s);
  w.key("mean_oracle_cost_usd").value(r.mean_oracle_cost_usd);
  w.key("mean_regret").value(r.mean_regret);
  w.key("trials_beating_baseline_wall").value(r.trials_beating_baseline_wall);
  w.key("trials_beating_baseline_cost").value(r.trials_beating_baseline_cost);
  w.key("trials_degraded_to_floor").value(r.trials_degraded_to_floor);
  w.end_object();

  if (metrics != nullptr) w.key("metrics").raw(metrics->to_json());
  w.end_object();
  return w.str();
}

}  // namespace stash::policy
