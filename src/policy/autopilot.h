// Elastic autopilot: the policy engine that closes the observe→decide→act
// loop the rest of the repo only observes.
//
// Stash characterizes stalls (profiler), blames them (obs), injects faults
// (faults), and prices deployments under revocation risk (plan) — but a run
// that starts on the planner's cheapest frontier plan stops being optimal
// after the first spot revocation. This module simulates a whole training
// run under a revocation/straggler trace and, on every trigger, re-plans
// over the *surviving* fleet:
//
//   triggers   revocation (Poisson process over the spot machines, plus any
//              scripted crash events), straggler window onset, and a live
//              blame shift (the causal N/W stall share of the new fleet
//              shape crossing a threshold);
//   actions    hold      wait for a replacement spot machine and replay
//                        from the last checkpoint (the no-replan baseline),
//              shrink    continue on the smaller fleet (elastic DDP),
//              fallback  replace the revoked spot machine with on-demand
//                        capacity (DeepVM-style tier switch),
//              migrate   checkpoint-restart onto the fleet plan::Planner
//                        picks for the *remaining* work,
//              floor     the graceful-degradation guarantee: a minimal
//                        all-on-demand fleet that always makes progress.
//
// Robustness invariants (tested): back-to-back revocations escalate an
// exponential backoff; more than max_retries consecutive revocations — or
// an exhausted revocation trace — force the floor; the floor has no spot
// exposure, so every scenario terminates. No policy can hang or abort.
//
// Every constant the engine uses is measured, not assumed: warm throughput,
// cold-start penalty, restart/shrink recovery waits (one crash-calibration
// trainer run per fleet shape, the spot_replay approach), and the causal
// N/W blame share (attribute_step). The engine itself is analytic — a
// multi-hour run cannot be replayed iteration-by-iteration — mirroring the
// simulate_spot_run/replay_spot_run split.
//
// Reporting: achieved vs planned (wall, cost), a no-replan baseline run on
// the identical trace, an oracle that re-decides each trigger by rolling
// out every candidate action against the true future trace (greedy one-step
// lookahead), and per-decision regret against that oracle. Outputs are
// byte-identical for every jobs value: trials fan out over the execution
// context's pool but land by index, and every random draw comes from a
// per-trial child stream of the seed.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cloud/spot.h"
#include "dnn/dataset.h"
#include "dnn/model.h"
#include "faults/fault_plan.h"
#include "monitor/detectors.h"
#include "stash/profiler.h"
#include "telemetry/metrics.h"
#include "util/trace.h"

namespace stash::policy {

// What the engine does on each trigger. kAdaptive picks per decision by
// minimizing the expected objective (cost plus deadline/budget penalties).
enum class PolicyKind { kHold, kShrink, kFallback, kMigrate, kAdaptive };

const char* to_string(PolicyKind kind);
// Parses "hold|shrink|fallback|migrate|adaptive"; throws
// std::invalid_argument on anything else.
PolicyKind parse_policy(const std::string& name);

// The action actually executed at a decision point. kFloor is never chosen
// by a fixed policy directly — it is the degradation guarantee (forced by
// retry exhaustion, the fleet-below-k edge, or trace exhaustion).
enum class Action { kHold, kShrink, kFallback, kMigrate, kFloor };
const char* to_string(Action a);

enum class Trigger { kRevocation, kStraggler, kBlameShift };
const char* to_string(Trigger t);

// How planned triggers (straggler, blame shift) fire.
//
//   kThreshold  the engine learns of a straggler window the instant it
//               opens and fires the blame-shift trigger on an absolute
//               share threshold (the original behavior, and the default —
//               existing outputs are unchanged).
//   kDetector   the engine only learns of a straggler once the streaming
//               monitor's CUSUM would have detected it: the straggler
//               decision is delayed by the detector's latency on a
//               synthesized iteration-time stream (a pure function of the
//               slowdown factor and the detector config — standardization
//               cancels the iteration time). The blame-shift trigger fires
//               on a single-sample CUSUM exceedance of the share against
//               the previous shape's share instead of an absolute level.
enum class TriggerMode { kThreshold, kDetector };

const char* to_string(TriggerMode m);
// Parses "threshold|detector"; throws std::invalid_argument otherwise.
TriggerMode parse_trigger_mode(const std::string& name);

// One concrete fleet: a cluster spec plus how many of its machines ride the
// spot market (the rest are on-demand).
struct FleetShape {
  profiler::ClusterSpec spec{};
  int spot_machines = 0;

  int ondemand_machines() const { return spec.count - spot_machines; }
  // "p3.8xlarge*2 [spot1+od1]" — the planner's allocation label style.
  std::string label() const;
  bool same_shape(const FleetShape& o) const {
    return spec.instance == o.spec.instance && spec.count == o.spec.count &&
           spot_machines == o.spot_machines;
  }
};

struct AutopilotOptions {
  PolicyKind policy = PolicyKind::kAdaptive;
  int epochs = 12;
  int per_gpu_batch = 32;

  // Soft constraints: 0 = unconstrained. Overruns are penalized in the
  // decision objective, never hidden from the report.
  double budget_usd = 0.0;
  double deadline_hours = 0.0;

  // Spot market parameters; interruptions_per_hour is per spot machine.
  cloud::SpotConfig spot{};
  std::uint64_t seed = 2026;
  int trials = 5;        // independent revocation traces
  int plan_trials = 25;  // Monte-Carlo draws inside each plan::plan call

  // Candidate cluster configurations for the initial plan and for migrate
  // targets; empty = profiler::default_candidates().
  std::vector<profiler::ClusterSpec> candidates;
  // Pinned initial fleet (empty instance = let plan::plan choose the
  // cheapest frontier plan). initial_spot_machines -1 = all machines spot
  // when pinned, the planner's choice otherwise.
  profiler::ClusterSpec initial_spec{};
  int initial_spot_machines = -1;

  // Graceful-degradation floor: this many on-demand machines of the initial
  // fleet's instance type. The floor has no spot exposure and therefore
  // always makes progress.
  int floor_machines = 1;
  // Fleet-below-k threshold: a shrink that would leave fewer machines than
  // this degrades to the floor (with a warning) instead.
  int min_machines = 1;

  // Bounded retry: more than max_retries consecutive revocations (each
  // within backoff_window_s of the previous) force the floor. Between
  // consecutive revocations the engine also waits an exponential backoff
  // (backoff_base_s * 2^(n-2), capped at 64x) before resuming.
  int max_retries = 4;
  double backoff_base_s = 60.0;
  double backoff_window_s = 900.0;

  // Barrier-watchdog window for calibration runs (0 = automatic, twice the
  // measured iteration time); rejects negative/NaN/infinite values.
  double watchdog_timeout_s = 0.0;

  // Blame-shift trigger: after a fleet change, if the causal N/W stall
  // share of the new shape crosses this threshold from below, an extra
  // decision fires (adaptive may migrate off the network-bound shape;
  // fixed policies observe and hold). 0 disables the trigger.
  double nw_blame_threshold = 0.35;

  // Planned-trigger firing semantics (see TriggerMode). Detector mode uses
  // `detector` for the latency model; nw_blame_threshold > 0 still gates
  // whether the blame-shift trigger is armed at all.
  TriggerMode trigger_mode = TriggerMode::kThreshold;
  monitor::DetectorConfig detector{};

  // Scripted events layered on the Poisson process: kCrash events become
  // scheduled revocations at their start_s (identical in every trial —
  // the repeatable part of a scenario), kGpuStraggler events become
  // job-wide slowdown windows (factor x for [start_s, start_s+duration)).
  // Other kinds are ignored.
  faults::FaultPlan scripted_faults{};

  profiler::ProfileOptions profile{};

  // Throws std::invalid_argument naming the offending field.
  void validate() const;
};

// One candidate action's evaluation at a decision point. For the engine's
// policy run these are true-trace counterfactual rollouts (the regret
// basis); predicted values are completion wall/cost if the action is taken.
struct CandidateEval {
  Action action = Action::kHold;
  double predicted_wall_s = 0.0;
  double predicted_cost_usd = 0.0;
  double objective = 0.0;
};

// One trigger firing: what the engine saw, chose, and paid.
struct Decision {
  double time_s = 0.0;
  Trigger trigger = Trigger::kRevocation;
  Action action = Action::kHold;
  std::string fleet_before;
  std::string fleet_after;
  double wait_s = 0.0;     // recovery wait (detection + reprovision + ckpt)
  double backoff_s = 0.0;  // exponential-backoff share of the wait
  int consecutive_revocations = 0;
  double lost_work_s = 0.0;  // rolled-back progress, in wall seconds
  double nw_blame_share = 0.0;  // causal N/W share of the fleet after
  // Detector-mode straggler decisions only: how long the monitor took to
  // notice the shift (0 in threshold mode and for other triggers).
  int detect_latency_iters = 0;
  double detect_delay_s = 0.0;
  bool forced_floor = false;
  // Chosen action's true-rollout objective minus the best candidate's
  // (>= 0; 0 when the engine chose what the oracle would have).
  double regret = 0.0;
  std::vector<CandidateEval> candidates;
};

// One sampled revocation trace, run three ways: the configured policy, the
// no-replan baseline (pure hold), and the trace-aware oracle.
struct TrialResult {
  std::uint64_t seed = 0;
  int revocations = 0;
  int scheduled_crashes = 0;

  double achieved_wall_s = 0.0;
  double achieved_cost_usd = 0.0;
  double baseline_wall_s = 0.0;
  double baseline_cost_usd = 0.0;
  double oracle_wall_s = 0.0;
  double oracle_cost_usd = 0.0;
  double total_regret = 0.0;

  bool degraded_to_floor = false;
  bool met_budget = true;
  bool met_deadline = true;
  std::string final_fleet;
  std::vector<Decision> decisions;
};

struct AutopilotReport {
  std::string model_name;
  AutopilotOptions options{};

  FleetShape initial_fleet{};
  // Expected completion of the initial fleet under the revocation process
  // (closed-form; what the tenant signed up for).
  double planned_wall_s = 0.0;
  double planned_cost_usd = 0.0;

  std::vector<TrialResult> trials;

  // Means over trials.
  double mean_achieved_wall_s = 0.0;
  double mean_achieved_cost_usd = 0.0;
  double mean_baseline_wall_s = 0.0;
  double mean_baseline_cost_usd = 0.0;
  double mean_oracle_wall_s = 0.0;
  double mean_oracle_cost_usd = 0.0;
  double mean_regret = 0.0;
  int trials_beating_baseline_wall = 0;
  int trials_beating_baseline_cost = 0;
  int trials_degraded_to_floor = 0;
};

// Runs the autopilot: plans the initial fleet, measures every fleet shape
// it touches (through the profiler's SimCache / execution context), fans
// the trials across the pool, and aggregates. Deterministic for any jobs
// value.
AutopilotReport run_autopilot(const dnn::Model& model,
                              const dnn::Dataset& dataset,
                              const AutopilotOptions& options);

// Records the report's decision counters/histograms into a registry
// (autopilot/*) and, when `trace` is non-null, one span per decision of the
// first trial on the autopilot track. Both are derived from the report
// post-hoc, so they are deterministic regardless of how trials raced.
void record_telemetry(const AutopilotReport& r,
                      telemetry::MetricsRegistry* metrics,
                      util::TraceRecorder* trace);

// stash.autopilot/1 JSON document. `extra_config` key/values are echoed
// into the config block; `metrics` (may be null) appends a registry
// snapshot.
std::string to_json(const AutopilotReport& r,
                    const std::vector<std::pair<std::string, std::string>>&
                        extra_config = {},
                    const telemetry::MetricsRegistry* metrics = nullptr);

}  // namespace stash::policy
