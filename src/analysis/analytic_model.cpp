#include "analysis/analytic_model.h"

#include <algorithm>
#include <stdexcept>

#include "coll/ring_allreduce.h"

namespace stash::analysis {

double per_layer_transfer_time(double grad_bytes, int layers, const TransferModel& m) {
  if (layers < 1) throw std::invalid_argument("per_layer_transfer_time: layers < 1");
  if (m.bandwidth <= 0.0)
    throw std::invalid_argument("per_layer_transfer_time: bandwidth <= 0");
  return (m.tau + grad_bytes / (static_cast<double>(layers) * m.bandwidth)) * layers;
}

Regime classify_regime(double grad_bytes, int layers, const TransferModel& m) {
  double latency_term = m.tau * layers;
  double bandwidth_term = grad_bytes / m.bandwidth;
  if (latency_term > 4.0 * bandwidth_term) return Regime::kLatencyBound;
  if (bandwidth_term > 4.0 * latency_term) return Regime::kBandwidthBound;
  return Regime::kMixed;
}

std::string regime_name(Regime r) {
  switch (r) {
    case Regime::kLatencyBound: return "latency-bound";
    case Regime::kBandwidthBound: return "bandwidth-bound";
    case Regime::kMixed: return "mixed";
  }
  return "?";
}

double ring_bottleneck_bw(const profiler::ClusterSpec& spec) {
  const auto& type = cloud::instance(spec.instance);
  if (spec.count > 1) return type.network_bw;

  const int k = spec.gpus_used();
  // PCIe hop: lane-limited or a fair share of the doubly-traversed bridge
  // (all k ring flows cross it twice per round).
  double pcie_hop = std::min(type.pcie_lane_bw,
                             type.host_bridge_bw / (2.0 * std::max(1, k)));
  switch (type.interconnect) {
    case hw::InterconnectKind::kPcieOnly:
      return pcie_hop;
    case hw::InterconnectKind::kNvswitch:
      return type.nvlink_bw;
    case hw::InterconnectKind::kPcieNvlink:
      // 4-GPU slices may be fragmented: the single PCIe hop paces the ring
      // (only one flow crosses the bridge, so it is lane- or half-bridge-
      // limited, not k-way shared).
      if (type.num_gpus == 4 && spec.slice == cloud::CrossbarSlice::kFragmented)
        return std::min(type.pcie_lane_bw, type.host_bridge_bw / 2.0);
      return type.nvlink_bw;
  }
  throw std::logic_error("unreachable");
}

double effective_tau(const profiler::ClusterSpec& spec,
                     const coll::CollectiveConfig& config) {
  const int k = spec.gpus_used();
  double round = spec.count > 1 ? config.inter_round_latency
                                : config.intra_round_latency;
  return 2.0 * std::max(0, k - 1) * round;
}

double predict_comm_seconds(const dnn::Model& model,
                            const profiler::ClusterSpec& spec,
                            const coll::CollectiveConfig& config) {
  const int k = spec.gpus_used();
  if (k < 2) return 0.0;
  double bw = ring_bottleneck_bw(spec);
  double round = spec.count > 1 ? config.inter_round_latency
                                : config.intra_round_latency;
  double total = 0.0;
  for (double g : model.gradient_tensors_backward())
    total += coll::ring_allreduce_analytic(g, k, bw, round);
  return total;
}

double predict_comm_stall_pct(const dnn::Model& model,
                              const profiler::ClusterSpec& spec, int per_gpu_batch,
                              const coll::CollectiveConfig& config) {
  if (per_gpu_batch < 1) throw std::invalid_argument("per_gpu_batch < 1");
  const auto& type = cloud::instance(spec.instance);
  double batch = per_gpu_batch;
  double fwd = model.fwd_flops_per_sample() * batch / type.gpu.effective_flops;
  double bwd = model.bwd_flops_per_sample() * batch / type.gpu.effective_flops;
  double single_gpu = (fwd + bwd) * 1.02;  // optimizer overhead

  if (spec.gpus_used() < 2) return 0.0;
  // Per-layer launch overhead blocks the compute stream (tau * L), as does
  // the non-overlapped share of the transfers; the overlapped share hides
  // behind the backward pass and stalls only past it.
  double blocking = config.launch_blocking_latency *
                    static_cast<double>(model.num_param_tensors());
  double comm = predict_comm_seconds(model, spec, config);
  double sync_comm = (1.0 - config.overlap_fraction) * comm;
  double async_comm = config.overlap_fraction * comm;
  double window = bwd + blocking + sync_comm;
  double stall = blocking + sync_comm + std::max(0.0, async_comm - window);
  return stall / single_gpu * 100.0;
}

}  // namespace stash::analysis
