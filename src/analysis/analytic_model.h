// Closed-form communication-stall model (paper §VI-A2).
//
// The paper explains the VGG/ResNet asymmetry with a per-layer transfer
// model: a model with G bytes of gradients across L layers pays
//
//     T = (tau + G / (L * B)) * L = tau*L + G/B
//
// per synchronization pass over a link of bandwidth B with per-layer
// launch latency tau. On fast links (NVLink) G/B is negligible and
// T ~ tau*L — deep models (ResNet) stall more. On slow links (the NIC)
// tau*L is negligible and T ~ G/B — gradient-heavy models (VGG) stall
// more. This module provides that model plus an analytic interconnect-
// stall predictor to compare against the simulator (ablation A1).
#pragma once

#include <string>

#include "coll/collective.h"
#include "dnn/model.h"
#include "stash/cluster_spec.h"

namespace stash::analysis {

struct TransferModel {
  double tau = 0.0;        // per-layer launch latency, seconds
  double bandwidth = 0.0;  // governing link bandwidth, bytes/s
};

// T = (tau + G/(L*B)) * L.
double per_layer_transfer_time(double grad_bytes, int layers, const TransferModel& m);

enum class Regime { kLatencyBound, kBandwidthBound, kMixed };

// Which term dominates (ratio > 4x either way -> bound; else mixed).
Regime classify_regime(double grad_bytes, int layers, const TransferModel& m);
std::string regime_name(Regime r);

// Effective per-hop ring bandwidth for a cluster spec, from its hardware
// constants: NVLink for complete crossbar rings, the PCIe lane/bridge share
// for PCIe (and fragmented-slice) rings, the NIC across machines.
double ring_bottleneck_bw(const profiler::ClusterSpec& spec);

// Per-layer launch latency tau for the spec: 2(k-1) ring rounds each
// paying the per-round latency.
double effective_tau(const profiler::ClusterSpec& spec,
                     const coll::CollectiveConfig& config);

// Total per-iteration all-reduce time for a model on a spec, summing the
// analytic ring cost per gradient tensor.
double predict_comm_seconds(const dnn::Model& model,
                            const profiler::ClusterSpec& spec,
                            const coll::CollectiveConfig& config);

// Analytic interconnect/network stall %: communication not hidden behind
// the backward pass, relative to single-GPU iteration time.
double predict_comm_stall_pct(const dnn::Model& model,
                              const profiler::ClusterSpec& spec, int per_gpu_batch,
                              const coll::CollectiveConfig& config);

}  // namespace stash::analysis
