#!/usr/bin/env bash
# Tier-1 verification: the full build + test suite, then the fault and
# concurrency tests again under ASan+UBSan (the coroutine-heavy recovery
# paths are exactly where lifetime bugs hide).
#
# Usage: scripts/verify.sh [--no-sanitizers]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier 1: configure + build + ctest (default preset)"
cmake --preset default
cmake --build --preset default -j "$(nproc)"
ctest --preset default -j "$(nproc)"

if [[ "${1:-}" == "--no-sanitizers" ]]; then
  echo "==> skipping sanitizer pass"
  exit 0
fi

echo "==> tier 1: ASan+UBSan pass over fault/concurrency/flow-engine tests"
cmake --preset asan
cmake --build --preset asan -j "$(nproc)" \
  --target test_sim test_hw test_faults test_ddl test_stash
ctest --preset asan -j "$(nproc)" \
  -R '(Fault|Abortable|SpotReplay|Revocation|Barrier|Event|Latch|Semaphore|Mailbox|Simulator|Incremental|FlowNetwork)'

echo "==> verify OK"
